package problem

import (
	"fmt"
	"sort"

	"tdmroute/internal/graph"
)

// Violation is one problem found by AuditSolution.
type Violation struct {
	// Kind classifies the violation.
	Kind ViolationKind
	// Net is the offending net (-1 for edge-level violations).
	Net int
	// Edge is the offending edge (-1 for net-level violations).
	Edge int
	// Detail is a human-readable description.
	Detail string
}

// ViolationKind enumerates audit categories.
type ViolationKind int

// Audit categories.
const (
	// VUnrouted: a multi-terminal net has no edges.
	VUnrouted ViolationKind = iota
	// VBadEdge: an edge id is out of range or duplicated in a route.
	VBadEdge
	// VCycle: a route contains a cycle.
	VCycle
	// VDisconnected: a route misses one of the net's terminals.
	VDisconnected
	// VBadRatio: a ratio is not a positive even integer (or missing).
	VBadRatio
	// VOverload: an edge's reciprocal sum exceeds 1.
	VOverload
)

func (k ViolationKind) String() string {
	switch k {
	case VUnrouted:
		return "unrouted"
	case VBadEdge:
		return "bad-edge"
	case VCycle:
		return "cycle"
	case VDisconnected:
		return "disconnected"
	case VBadRatio:
		return "bad-ratio"
	case VOverload:
		return "overload"
	}
	return fmt.Sprintf("ViolationKind(%d)", int(k))
}

// Audit is the full report of AuditSolution.
type Audit struct {
	Violations []Violation
	// ByKind counts violations per category.
	ByKind map[ViolationKind]int
}

// OK reports a clean audit.
func (a *Audit) OK() bool { return len(a.Violations) == 0 }

// AuditSolution checks everything ValidateSolution checks but collects ALL
// violations instead of stopping at the first — the debugging view for a
// flow that produced an illegal solution. MaxPerKind caps the entries kept
// per category (0 = 100) so a systematically broken solution does not
// produce millions of entries; ByKind always holds exact counts.
func AuditSolution(in *Instance, sol *Solution, maxPerKind int) *Audit {
	if maxPerKind <= 0 {
		maxPerKind = 100
	}
	a := &Audit{ByKind: map[ViolationKind]int{}}
	add := func(v Violation) {
		a.ByKind[v.Kind]++
		if a.ByKind[v.Kind] <= maxPerKind {
			a.Violations = append(a.Violations, v)
		}
	}

	ne := in.G.NumEdges()
	nNets := len(in.Nets)
	if len(sol.Routes) != nNets {
		add(Violation{Kind: VBadEdge, Net: -1, Edge: -1,
			Detail: fmt.Sprintf("routing covers %d nets, instance has %d", len(sol.Routes), nNets)})
		return a
	}
	for n := 0; n < nNets; n++ {
		terms := in.Nets[n].Terminals
		edges := sol.Routes[n]
		ratios := sol.Assign.Ratios[n]
		if len(terms) > 1 && len(edges) == 0 {
			add(Violation{Kind: VUnrouted, Net: n, Edge: -1, Detail: "multi-terminal net has no route"})
			continue
		}
		if len(ratios) != len(edges) {
			add(Violation{Kind: VBadRatio, Net: n, Edge: -1,
				Detail: fmt.Sprintf("%d ratios for %d edges", len(ratios), len(edges))})
		}
		dsu := graph.NewDSU(in.G.NumVertices())
		seen := make(map[int]bool, len(edges))
		broken := false
		for k, e := range edges {
			if e < 0 || e >= ne {
				add(Violation{Kind: VBadEdge, Net: n, Edge: e, Detail: "edge id out of range"})
				broken = true
				continue
			}
			if seen[e] {
				add(Violation{Kind: VBadEdge, Net: n, Edge: e, Detail: "duplicate edge in route"})
				broken = true
				continue
			}
			seen[e] = true
			ed := in.G.Edge(e)
			if !dsu.Union(ed.U, ed.V) {
				add(Violation{Kind: VCycle, Net: n, Edge: e, Detail: "route contains a cycle"})
				broken = true
			}
			if k < len(ratios) {
				if r := ratios[k]; r < 2 || r%2 != 0 {
					add(Violation{Kind: VBadRatio, Net: n, Edge: e,
						Detail: fmt.Sprintf("ratio %d is not a positive even integer", r)})
				}
			}
		}
		if !broken && len(terms) > 1 {
			for _, term := range terms[1:] {
				if !dsu.Same(terms[0], term) {
					add(Violation{Kind: VDisconnected, Net: n, Edge: -1,
						Detail: fmt.Sprintf("terminal %d not connected", term)})
				}
			}
		}
	}

	// Per-edge budgets over whatever ratios are present and legal-ish.
	loads := EdgeLoads(ne, sol.Routes)
	for e, ls := range loads {
		var sum float64
		for _, l := range ls {
			if l.Pos < len(sol.Assign.Ratios[l.Net]) {
				if r := sol.Assign.Ratios[l.Net][l.Pos]; r > 0 {
					sum += 1 / float64(r)
				}
			}
		}
		if sum > 1+1e-9 {
			add(Violation{Kind: VOverload, Net: -1, Edge: e,
				Detail: fmt.Sprintf("reciprocal sum %.6f exceeds 1 over %d nets", sum, len(ls))})
		}
	}
	return a
}

// Summary renders counts per category, most frequent first.
func (a *Audit) Summary() string {
	if a.OK() {
		return "audit clean"
	}
	type kc struct {
		k ViolationKind
		c int
	}
	var kcs []kc
	//lint:ignore maporder the sort below totally orders entries by (count, kind), erasing map order
	for k, c := range a.ByKind {
		kcs = append(kcs, kc{k, c})
	}
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].c != kcs[j].c {
			return kcs[i].c > kcs[j].c
		}
		return kcs[i].k < kcs[j].k
	})
	out := ""
	for i, e := range kcs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%d", e.k, e.c)
	}
	return out
}
