package problem

import "math"

// Saturation bounds for the ratio legalizers. Converting a float64 at or
// above 2^63 to int64 is platform-defined in Go (on amd64 it produces
// math.MinInt64), so relaxed ratios that large — the LR assigns them to
// ungrouped nets whose multipliers are floored near zero — must saturate
// instead of overflowing into a negative "legal" ratio. These helpers are
// the single shared implementation for every stage that rounds a fractional
// ratio to the legal domain (tdm legalization and the baseline assigners),
// so the guards cannot drift apart again.
const (
	// MaxEvenRatio is the largest even int64.
	MaxEvenRatio = int64(math.MaxInt64) - 1
	// MaxPow2Ratio is the largest power-of-two int64.
	MaxPow2Ratio = int64(1) << 62
	// RatioOverflow is 2^63 exactly: any float64 >= it cannot be converted
	// to int64.
	RatioOverflow = float64(math.MaxInt64)
)

// EvenCeilRatio returns the smallest even integer >= max(t, 2), saturating
// at the largest even int64 for NaN-free overflow and +Inf.
func EvenCeilRatio(t float64) int64 {
	if !(t > 2) { // also catches NaN
		return 2
	}
	if t >= RatioOverflow {
		return MaxEvenRatio
	}
	c := int64(math.Ceil(t))
	if c%2 != 0 {
		c++
	}
	return c
}

// Pow2CeilRatio returns the smallest power of two >= max(t, 2), saturating
// at 2^62 for +Inf or values beyond that.
func Pow2CeilRatio(t float64) int64 {
	if !(t > 2) { // also catches NaN
		return 2
	}
	if t >= float64(MaxPow2Ratio) {
		return MaxPow2Ratio
	}
	p := int64(2)
	for float64(p) < t {
		p <<= 1
	}
	return p
}
