package problem

import "fmt"

// ParseError is the typed error of the text parsers: every failure of
// ParseInstance and ParseSolution carries the 1-based input line and the
// offending token, so corrupt files can be located without re-reading them.
type ParseError struct {
	// Line is the 1-based line on which the offending token starts (the
	// current line for truncation errors).
	Line int
	// Token is the offending token; empty when the input ended instead.
	Token string
	// Msg says what was wrong with it.
	Msg string
	// Err is the underlying cause (io.EOF, a strconv error), if any.
	Err error
}

func (e *ParseError) Error() string {
	if e.Token != "" {
		return fmt.Sprintf("line %d: token %q: %s", e.Line, e.Token, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

func (e *ParseError) Unwrap() error { return e.Err }
