package problem

import "math"

// Saturating wide arithmetic for solver quantities (costs, usages, slot
// counts, ratios). Raw int64 `*`, `+`, and `<<` wrap silently — the exact
// overflow class once fixed by hand in the TDM legalizers — so every stage
// doing wide arithmetic on these values routes through the helpers below;
// the satarith analyzer (internal/lint) enforces it. All three saturate at
// the int64 range boundaries instead of wrapping, which preserves the
// ordering invariants the solver relies on (a huge cost stays huge instead
// of becoming negative and "winning" every comparison).

// SatAdd64 returns a+b, saturating at math.MinInt64/MaxInt64.
func SatAdd64(a, b int64) int64 {
	s := a + b
	// Overflow iff both operands share a sign and the sum flipped it.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// SatMul64 returns a*b, saturating at math.MinInt64/MaxInt64.
func SatMul64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	// Division-based check: p/b != a exactly when the product wrapped.
	// MinInt64 * -1 overflows the division itself; handle it first.
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 {
			return b
		}
		if b == 1 {
			return a
		}
		if (a < 0) == (b < 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	if p/b != a {
		if (a < 0) == (b < 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

// SatShl64 returns v<<k, saturating at math.MinInt64/MaxInt64. Negative
// shift counts saturate the magnitude immediately (they would panic as raw
// shifts); shifts of zero return zero.
func SatShl64(v int64, k int) int64 {
	if v == 0 {
		return 0
	}
	if k <= 0 {
		if k == 0 {
			return v
		}
		k = 64
	}
	if k >= 64 {
		if v > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	s := v << k
	if s>>k != v || (s >= 0) != (v >= 0) {
		if v > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}
