package problem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBinaryInstanceRoundTrip(t *testing.T) {
	in := tinyInstance()
	var buf bytes.Buffer
	if err := WriteInstanceBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInstanceBinary("bin", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !instancesEquivalent(in, back) {
		t.Fatal("binary round trip changed the instance")
	}
	if err := ValidateInstance(back); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		in := randomValidInstance(seed)
		var buf bytes.Buffer
		if err := WriteInstanceBinary(&buf, in); err != nil {
			return false
		}
		back, err := ParseInstanceBinary("q", &buf)
		if err != nil {
			return false
		}
		return instancesEquivalent(in, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinarySolutionRoundTrip(t *testing.T) {
	sol := &Solution{
		Routes: Routing{{0, 3}, {}, {2}},
		Assign: Assignment{Ratios: [][]int64{{2, 1024}, {}, {6}}},
	}
	var buf bytes.Buffer
	if err := WriteSolutionBinary(&buf, sol); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSolutionBinary(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for n := range sol.Routes {
		for k := range sol.Routes[n] {
			if back.Routes[n][k] != sol.Routes[n][k] || back.Assign.Ratios[n][k] != sol.Assign.Ratios[n][k] {
				t.Fatalf("mismatch at net %d pos %d", n, k)
			}
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	// Wrong magic.
	if _, err := ParseInstanceBinary("x", bytes.NewReader([]byte("NOTME!rest"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParseSolutionBinary(bytes.NewReader([]byte("NOTME!rest")), 4); err == nil {
		t.Error("bad solution magic accepted")
	}
	// Truncated stream.
	in := tinyInstance()
	var buf bytes.Buffer
	if err := WriteInstanceBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{6, 8, len(data) / 2, len(data) - 1} {
		if _, err := ParseInstanceBinary("t", bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Solution: instance magic fed to solution parser and vice versa.
	if _, err := ParseSolutionBinary(bytes.NewReader(data), 7); err == nil {
		t.Error("instance bytes accepted as solution")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	in := randomValidInstance(5)
	var text, bin bytes.Buffer
	if err := WriteInstance(&text, in); err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceBinary(&bin, in); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
}

func FuzzParseInstanceBinary(f *testing.F) {
	in := tinyInstance()
	var buf bytes.Buffer
	if err := WriteInstanceBinary(&buf, in); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TDMRI1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ParseInstanceBinary("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := ValidateInstance(in); verr != nil && verr != ErrDisconnected {
			t.Fatalf("binary parser accepted invalid instance: %v", verr)
		}
	})
}

func BenchmarkParseBinaryVsText(b *testing.B) {
	in := randomValidInstance(9)
	var text, bin bytes.Buffer
	if err := WriteInstance(&text, in); err != nil {
		b.Fatal(err)
	}
	if err := WriteInstanceBinary(&bin, in); err != nil {
		b.Fatal(err)
	}
	b.Run("Text", func(b *testing.B) {
		b.SetBytes(int64(text.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ParseInstance("t", bytes.NewReader(text.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Binary", func(b *testing.B) {
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ParseInstanceBinary("b", bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
