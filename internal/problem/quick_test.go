package problem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tdmroute/internal/graph"
)

// randomValidInstance builds a structurally valid instance from a seed.
func randomValidInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	nv := 2 + rng.Intn(20)
	g := graph.New(nv, 2*nv)
	perm := rng.Perm(nv)
	for i := 1; i < nv; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	nn := 1 + rng.Intn(30)
	nets := make([]Net, nn)
	for i := range nets {
		k := 1 + rng.Intn(minI(4, nv))
		nets[i].Terminals = rng.Perm(nv)[:k]
	}
	ng := rng.Intn(20)
	groups := make([]Group, ng)
	for gi := range groups {
		m := 1 + rng.Intn(4)
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			n := rng.Intn(nn)
			if !seen[n] {
				seen[n] = true
				groups[gi].Nets = append(groups[gi].Nets, n)
			}
		}
		insertionSortInts(groups[gi].Nets)
	}
	in := &Instance{Name: "q", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func instancesEquivalent(a, b *Instance) bool {
	if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
		return false
	}
	for i, e := range a.G.Edges() {
		if b.G.Edges()[i] != e {
			return false
		}
	}
	if len(a.Nets) != len(b.Nets) || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Nets {
		at, bt := a.Nets[i].Terminals, b.Nets[i].Terminals
		if len(at) != len(bt) {
			return false
		}
		for j := range at {
			if at[j] != bt[j] {
				return false
			}
		}
	}
	for gi := range a.Groups {
		am, bm := a.Groups[gi].Nets, b.Groups[gi].Nets
		if len(am) != len(bm) {
			return false
		}
		for j := range am {
			if am[j] != bm[j] {
				return false
			}
		}
	}
	return true
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		in := randomValidInstance(seed)
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			return false
		}
		back, err := ParseInstance("q", &buf)
		if err != nil {
			return false
		}
		return instancesEquivalent(in, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		in := randomValidInstance(seed)
		var buf bytes.Buffer
		if err := WriteInstanceJSON(&buf, in); err != nil {
			return false
		}
		back, err := ParseInstanceJSON(&buf)
		if err != nil {
			return false
		}
		return instancesEquivalent(in, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSolutionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nn := rng.Intn(20)
		numEdges := 1 + rng.Intn(30)
		sol := &Solution{
			Routes: make(Routing, nn),
			Assign: Assignment{Ratios: make([][]int64, nn)},
		}
		for n := 0; n < nn; n++ {
			k := rng.Intn(minI(5, numEdges+1))
			// Distinct edge ids: a net routing the same edge twice is
			// rejected by the parsers.
			perm := rng.Perm(numEdges)
			for j := 0; j < k; j++ {
				sol.Routes[n] = append(sol.Routes[n], perm[j])
				sol.Assign.Ratios[n] = append(sol.Assign.Ratios[n], int64(2+2*rng.Intn(100)))
			}
		}
		var text, js bytes.Buffer
		if WriteSolution(&text, sol) != nil || WriteSolutionJSON(&js, sol) != nil {
			return false
		}
		a, err := ParseSolution(&text, numEdges)
		if err != nil {
			return false
		}
		b, err := ParseSolutionJSON(&js, numEdges)
		if err != nil {
			return false
		}
		for n := range sol.Routes {
			for j := range sol.Routes[n] {
				if a.Routes[n][j] != sol.Routes[n][j] || b.Routes[n][j] != sol.Routes[n][j] {
					return false
				}
				if a.Assign.Ratios[n][j] != sol.Assign.Ratios[n][j] || b.Assign.Ratios[n][j] != sol.Assign.Ratios[n][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	// Deterministic fuzz: random byte soup must produce an error, never a
	// panic (panics would fail the test runner).
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("0123456789 -\n\t#ab\r")
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		in, err := ParseInstance("fuzz", bytes.NewReader(buf))
		if err == nil {
			// Rarely the soup forms a valid instance; it must validate.
			if verr := ValidateInstance(in); verr != nil {
				t.Fatalf("parser accepted invalid instance from %q: %v", buf, verr)
			}
		}
		if _, err := ParseSolution(bytes.NewReader(buf), 10); err == nil {
			// Acceptable: structurally valid solutions can arise.
			continue
		}
	}
}
