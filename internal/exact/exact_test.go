package exact

import (
	"context"
	"math/rand"
	"testing"

	"tdmroute/internal/graph"
	"tdmroute/internal/problem"
	"tdmroute/internal/tdm"
)

func singleEdge(k int, grouped []bool) (*problem.Instance, problem.Routing) {
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{G: g, Nets: make([]problem.Net, k)}
	routes := make(problem.Routing, k)
	for i := 0; i < k; i++ {
		in.Nets[i].Terminals = []int{0, 1}
		routes[i] = []int{0}
	}
	for i := 0; i < k; i++ {
		if grouped == nil || grouped[i] {
			in.Groups = append(in.Groups, problem.Group{Nets: []int{i}})
		}
	}
	in.RebuildNetGroups()
	return in, routes
}

func TestExactSingleEdgeAllGrouped(t *testing.T) {
	// k nets, each its own group: optimum is the smallest even r with
	// k/r <= 1, i.e. evenceil(k).
	for _, k := range []int{1, 2, 3, 4, 5} {
		in, routes := singleEdge(k, nil)
		res, err := Solve(in, routes, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(k)
		if want%2 != 0 {
			want++
		}
		if res.GTRMax != want {
			t.Errorf("k=%d: GTR %d, want %d", k, res.GTRMax, want)
		}
		sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: res.Ratios}}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Errorf("k=%d: oracle solution invalid: %v", k, err)
		}
	}
}

func TestExactUngroupedNetsGetBigRatios(t *testing.T) {
	// 4 nets, only net 0 grouped: optimal objective 2 (the grouped net
	// at ratio 2, the other three share the remaining half budget).
	in, routes := singleEdge(4, []bool{true, false, false, false})
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GTRMax != 2 {
		t.Fatalf("GTR %d, want 2", res.GTRMax)
	}
	if res.Ratios[0][0] != 2 {
		t.Errorf("grouped net ratio %d, want 2", res.Ratios[0][0])
	}
	sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: res.Ratios}}
	if err := problem.ValidateSolution(in, sol); err != nil {
		t.Fatalf("oracle solution invalid: %v", err)
	}
}

func TestExactAsymmetricGroups(t *testing.T) {
	// Two nets on one edge; groups {n0} and {n0,n1}: optimum t0=t1=2,
	// objective 4.
	g := graph.New(2, 1)
	g.AddEdge(0, 1)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{0, 1}}, {Terminals: []int{0, 1}}},
		Groups: []problem.Group{
			{Nets: []int{0}},
			{Nets: []int{0, 1}},
		},
	}
	in.RebuildNetGroups()
	routes := problem.Routing{{0}, {0}}
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GTRMax != 4 {
		t.Errorf("GTR %d, want 4", res.GTRMax)
	}
}

func TestExactTwoEdgePath(t *testing.T) {
	// Net 0 over edges {0,1}, net 1 over {1}; separate groups. Integral
	// optimum: on edge 1 pick (t0,t1) even with 1/t0+1/t1<=1 minimizing
	// max(t0+2, t1): t0=2,t1=2 -> max(4,2)=4.
	g := graph.New(3, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	in := &problem.Instance{
		G:    g,
		Nets: []problem.Net{{Terminals: []int{0, 2}}, {Terminals: []int{1, 2}}},
		Groups: []problem.Group{
			{Nets: []int{0}},
			{Nets: []int{1}},
		},
	}
	in.RebuildNetGroups()
	routes := problem.Routing{{0, 1}, {1}}
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GTRMax != 4 {
		t.Errorf("GTR %d, want 4", res.GTRMax)
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	in, routes := singleEdge(20, nil)
	if _, err := Solve(in, routes, Options{}); err == nil {
		t.Error("20-cell instance accepted with default cap")
	}
}

// randomTiny builds instances small enough for the oracle.
func randomTiny(rng *rand.Rand) (*problem.Instance, problem.Routing) {
	nv := 3 + rng.Intn(2)
	g := graph.New(nv, nv)
	for i := 0; i+1 < nv; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(0, nv-1)
	nn := 2 + rng.Intn(4)
	nets := make([]problem.Net, nn)
	routes := make(problem.Routing, nn)
	d := graph.NewDijkstra(g)
	for i := 0; i < nn; i++ {
		u := rng.Intn(nv)
		v := rng.Intn(nv)
		for v == u {
			v = rng.Intn(nv)
		}
		nets[i].Terminals = []int{u, v}
		path, _, _ := d.ShortestPath(u, v, func(int) uint64 { return 1 }, nil)
		routes[i] = path
	}
	ng := 1 + rng.Intn(3)
	groups := make([]problem.Group, ng)
	for gi := range groups {
		m := 1 + rng.Intn(2)
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			n := rng.Intn(nn)
			if !seen[n] {
				seen[n] = true
				groups[gi].Nets = append(groups[gi].Nets, n)
			}
		}
		sortIntsSlice(groups[gi].Nets)
	}
	in := &problem.Instance{Name: "tiny", G: g, Nets: nets, Groups: groups}
	in.RebuildNetGroups()
	return in, routes
}

func sortIntsSlice(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestExactBracketsPipelineOnRandomTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pipelineTotal, exactTotal int64
	checked := 0
	for trial := 0; trial < 40; trial++ {
		in, routes := randomTiny(rng)
		res, err := Solve(in, routes, Options{MaxCells: 12})
		if err != nil {
			continue // too large for the oracle; skip
		}
		checked++
		sol := &problem.Solution{Routes: routes, Assign: problem.Assignment{Ratios: res.Ratios}}
		if err := problem.ValidateSolution(in, sol); err != nil {
			t.Fatalf("trial %d: oracle solution invalid: %v", trial, err)
		}

		assign, rep, err := tdm.Assign(context.Background(), in, routes, tdm.Options{Epsilon: 1e-6, MaxIter: 3000})
		if err != nil {
			t.Fatal(err)
		}
		_ = assign
		// The pipeline can never beat the oracle.
		if rep.GTRMax < res.GTRMax {
			t.Fatalf("trial %d: pipeline %d beats 'optimal' %d — oracle bug", trial, rep.GTRMax, res.GTRMax)
		}
		// The relaxed LR bound can never exceed the integral optimum.
		if rep.LowerBound > float64(res.GTRMax)+1e-6 {
			t.Fatalf("trial %d: LR bound %g above integral optimum %d", trial, rep.LowerBound, res.GTRMax)
		}
		pipelineTotal += rep.GTRMax
		exactTotal += res.GTRMax
	}
	if checked < 20 {
		t.Fatalf("only %d/40 instances fit the oracle", checked)
	}
	// The heuristic pipeline should be near-optimal on tiny instances.
	if pipelineTotal > exactTotal*3/2 {
		t.Errorf("pipeline total %d vs exact %d: integrality gap too large", pipelineTotal, exactTotal)
	}
	t.Logf("pipeline total %d vs exact optimal %d over %d instances", pipelineTotal, exactTotal, checked)
}

func TestExactNodesCounted(t *testing.T) {
	in, routes := singleEdge(3, nil)
	res, err := Solve(in, routes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 1 {
		t.Error("no nodes explored")
	}
}

func BenchmarkExactTiny(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in, routes := randomTiny(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in, routes, Options{MaxCells: 12}); err != nil {
			b.Skip("instance too large")
		}
	}
}
