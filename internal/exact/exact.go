// Package exact provides a branch-and-bound oracle for the TDM ratio
// assignment problem on tiny instances: it finds the true optimal maximum
// group TDM ratio over *integral* assignments (every ratio a positive even
// integer, per-edge reciprocal sums at most 1) for a fixed topology.
//
// The paper's pipeline only certifies against the relaxed lower bound; this
// oracle closes the loop in tests by measuring the heuristic pipeline's
// true integrality gap. It is exponential and intended for instances with a
// handful of grouped nets and edges.
package exact

import (
	"fmt"

	"tdmroute/internal/problem"
)

// Options bounds the search.
type Options struct {
	// MaxCells caps the number of searched (grouped net, edge) cells;
	// Solve refuses larger instances instead of running forever. Zero
	// selects 14.
	MaxCells int
}

// Result is the oracle's answer.
type Result struct {
	// GTRMax is the optimal objective.
	GTRMax int64
	// Ratios is one optimal assignment, parallel to the routing.
	// Ungrouped nets receive the smallest even ratio fitting the
	// remaining edge slack.
	Ratios [][]int64
	// Nodes is the number of search nodes explored.
	Nodes int64
}

// cell is one (net, route position) pair on a specific edge.
type cell struct {
	net, pos, edge int
}

// Solve computes the optimal integral TDM assignment for the topology.
//
// Only cells of grouped nets are searched: in any solution, an ungrouped
// net's ratio can be raised freely without changing the objective, so an
// edge is completable iff strictly positive slack remains for its
// ungrouped cells — checked exactly in rational arithmetic.
func Solve(in *problem.Instance, routes problem.Routing, opt Options) (*Result, error) {
	if opt.MaxCells == 0 {
		opt.MaxCells = 14
	}
	loads := problem.EdgeLoads(in.G.NumEdges(), routes)

	// Grouped cells, contiguous per edge (the per-edge budget prunes
	// best that way); count ungrouped cells per edge.
	var cells []cell
	ungrouped := make([]int, in.G.NumEdges())
	for e, ls := range loads {
		for _, l := range ls {
			if len(in.Nets[l.Net].Groups) > 0 {
				cells = append(cells, cell{net: l.Net, pos: l.Pos, edge: e})
			} else {
				ungrouped[e]++
			}
		}
	}
	if len(cells) > opt.MaxCells {
		return nil, fmt.Errorf("exact: %d grouped cells exceed the cap %d", len(cells), opt.MaxCells)
	}

	ub, uniform := uniformAssignment(in, routes, loads)
	s := &searcher{
		in:        in,
		cells:     cells,
		ungrouped: ungrouped,
		best:      ub,
		bestSol:   uniform,
		grpSum:    make([]int64, len(in.Groups)),
		grpLeft:   make([]int64, len(in.Groups)),
		cur:       cloneRatios(uniform),
		edgeRem:   make([]fraction, in.G.NumEdges()),
		grpCells:  make([]int, in.G.NumEdges()),
	}
	for _, c := range cells {
		for _, gi := range in.Nets[c.net].Groups {
			s.grpLeft[gi] += 2
		}
		s.grpCells[c.edge]++
	}
	for e := range s.edgeRem {
		s.edgeRem[e] = fraction{0, 1}
	}
	s.dfs(0)

	// Fill the ungrouped cells of the best solution with the smallest
	// even ratio fitting the final slack of each edge.
	fillUngrouped(in, loads, s.bestSol)

	return &Result{GTRMax: s.best, Ratios: s.bestSol, Nodes: s.nodes}, nil
}

// fraction is an exact rational reciprocal accumulator (num/den, reduced).
type fraction struct {
	num, den int64
}

// add returns f + 1/r, reduced; ok=false on overflow.
func (f fraction) add(r int64) (fraction, bool) {
	num := f.num*r + f.den
	den := f.den * r
	if den <= 0 || num < 0 { // overflow guard
		return fraction{}, false
	}
	g := gcd(num, den)
	return fraction{num / g, den / g}, true
}

// leq1 reports f <= 1; lt1 reports f < 1.
func (f fraction) leq1() bool { return f.num <= f.den }
func (f fraction) lt1() bool  { return f.num < f.den }

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

type searcher struct {
	in        *problem.Instance
	cells     []cell
	ungrouped []int // ungrouped cells per edge

	best    int64
	bestSol [][]int64
	nodes   int64

	grpSum   []int64 // assigned contribution per group
	grpLeft  []int64 // minimal (=2/cell) remaining contribution per group
	cur      [][]int64
	edgeRem  []fraction // reciprocal sum accumulated per edge
	grpCells []int      // unassigned grouped cells remaining per edge
}

func (s *searcher) dfs(idx int) {
	s.nodes++
	if idx == len(s.cells) {
		obj := s.objective()
		if obj < s.best {
			s.best = obj
			s.bestSol = cloneRatios(s.cur)
		}
		return
	}
	c := s.cells[idx]
	groups := s.in.Nets[c.net].Groups
	// Any solution improving on the incumbent has every grouped ratio
	// strictly below it (each grouped ratio is at most its group's TDM).
	for r := int64(2); r < s.best; r += 2 {
		nf, ok := s.edgeRem[c.edge].add(r)
		if !ok {
			continue
		}
		// Edge feasibility: after this cell the remaining grouped cells
		// need 1/r' each (at least brought to < 1 eventually) and
		// ungrouped cells need strictly positive slack at the end. The
		// cheap sound check: the running sum must still admit the
		// minimal future load.
		if !s.edgeFeasible(c.edge, nf) {
			continue // larger r shrinks 1/r: keep scanning upward
		}
		old := s.edgeRem[c.edge]
		s.edgeRem[c.edge] = nf
		s.grpCells[c.edge]--
		s.cur[c.net][c.pos] = r
		prune := false
		for _, gi := range groups {
			s.grpSum[gi] += r
			s.grpLeft[gi] -= 2
			if s.grpSum[gi]+s.grpLeft[gi] >= s.best {
				prune = true
			}
		}
		if !prune {
			s.dfs(idx + 1)
		}
		for _, gi := range groups {
			s.grpSum[gi] -= r
			s.grpLeft[gi] += 2
		}
		s.cur[c.net][c.pos] = 0
		s.grpCells[c.edge]++
		s.edgeRem[c.edge] = old
		if prune {
			// Larger r only increases the group bound that tripped.
			break
		}
	}
}

// edgeFeasible reports whether, with running reciprocal sum f on edge e
// (after assigning the current cell, with grpCells[e]-1 grouped cells still
// unassigned there), a legal completion can exist. Remaining grouped cells
// can take arbitrarily large even ratios, so the requirement is f <= 1 with
// strict inequality when any cell (grouped or ungrouped) still needs room.
func (s *searcher) edgeFeasible(e int, f fraction) bool {
	remaining := s.grpCells[e] - 1 + s.ungrouped[e]
	if remaining > 0 {
		return f.lt1()
	}
	return f.leq1()
}

func (s *searcher) objective() int64 {
	var best int64
	for gi := range s.grpSum {
		if s.grpSum[gi] > best {
			best = s.grpSum[gi]
		}
	}
	return best
}

// fillUngrouped assigns every ungrouped cell of sol the smallest even ratio
// that fits the edge's residual slack, dividing the slack evenly.
func fillUngrouped(in *problem.Instance, loads [][]problem.EdgeLoad, sol [][]int64) {
	for _, ls := range loads {
		// Residual slack = 1 - sum of grouped reciprocals, exactly.
		rem := fraction{0, 1}
		u := 0
		for _, l := range ls {
			if len(in.Nets[l.Net].Groups) > 0 {
				rem, _ = rem.add(sol[l.Net][l.Pos])
			} else {
				u++
			}
		}
		if u == 0 {
			continue
		}
		// slack = (den-num)/den; each ungrouped cell gets
		// r = evenceil(u * den / (den - num)).
		num, den := rem.num, rem.den
		slackNum := den - num
		r := ceilDiv(int64(u)*den, slackNum)
		if r < 2 {
			r = 2
		}
		if r%2 != 0 {
			r++
		}
		for _, l := range ls {
			if len(in.Nets[l.Net].Groups) == 0 {
				sol[l.Net][l.Pos] = r
			}
		}
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 1 << 40 // degenerate: no slack; caller's solution was saturated
	}
	return (a + b - 1) / b
}

// uniformAssignment returns the objective and ratios of the uniform |N_e|
// assignment, the oracle's initial incumbent.
func uniformAssignment(in *problem.Instance, routes problem.Routing, loads [][]problem.EdgeLoad) (int64, [][]int64) {
	ratios := make([][]int64, len(routes))
	for n := range routes {
		ratios[n] = make([]int64, len(routes[n]))
	}
	for _, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		r := int64(len(ls))
		if r < 2 {
			r = 2
		}
		if r%2 != 0 {
			r++
		}
		for _, l := range ls {
			ratios[l.Net][l.Pos] = r
		}
	}
	netTDM := make([]int64, len(in.Nets))
	for n := range ratios {
		for _, r := range ratios[n] {
			netTDM[n] += r
		}
	}
	var obj int64
	for gi := range in.Groups {
		var sum int64
		for _, n := range in.Groups[gi].Nets {
			sum += netTDM[n]
		}
		if sum > obj {
			obj = sum
		}
	}
	return obj, ratios
}

func cloneRatios(src [][]int64) [][]int64 {
	out := make([][]int64, len(src))
	for i := range src {
		out[i] = append([]int64(nil), src[i]...)
	}
	return out
}
