// Package stats provides the small numeric utilities used by the Lagrangian
// multiplier update strategy of Sec. IV-C of the paper: a fixed-width simple
// moving average (SMA) window with streaming mean and standard deviation, and
// the Sigmoid function.
package stats

import "math"

// Window is a fixed-capacity sliding window over a series of float64 samples.
// It maintains the simple moving average and the (population) standard
// deviation of the most recent samples in O(1) per Push.
//
// The zero value is not usable; construct with NewWindow.
type Window struct {
	buf   []float64
	head  int // index of the oldest sample
	count int // number of valid samples, <= len(buf)
	sum   float64
	sumSq float64
}

// NewWindow returns a Window holding at most width samples.
// It panics if width < 1.
func NewWindow(width int) *Window {
	if width < 1 {
		panic("stats: window width must be >= 1")
	}
	return &Window{buf: make([]float64, width)}
}

// Width returns the capacity of the window.
func (w *Window) Width() int { return len(w.buf) }

// Len returns the number of samples currently in the window.
func (w *Window) Len() int { return w.count }

// Full reports whether the window holds Width samples.
func (w *Window) Full() bool { return w.count == len(w.buf) }

// Push inserts a sample, evicting the oldest sample if the window is full.
func (w *Window) Push(x float64) {
	if w.count == len(w.buf) {
		old := w.buf[w.head]
		w.sum -= old
		w.sumSq -= old * old
		w.buf[w.head] = x
		w.head = (w.head + 1) % len(w.buf)
	} else {
		w.buf[(w.head+w.count)%len(w.buf)] = x
		w.count++
	}
	w.sum += x
	w.sumSq += x * x
}

// Mean returns the simple moving average of the samples in the window.
// It returns 0 when the window is empty.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// StdDev returns the population standard deviation of the samples in the
// window. It returns 0 when the window holds fewer than two samples.
//
// To bound accumulated floating-point error from the streaming sums, the
// variance is recomputed exactly from the buffered samples whenever the
// streaming estimate turns (slightly) negative.
func (w *Window) StdDev() float64 {
	if w.count < 2 {
		return 0
	}
	n := float64(w.count)
	mean := w.sum / n
	variance := w.sumSq/n - mean*mean
	if variance < 0 {
		variance = w.exactVariance(mean)
	}
	return math.Sqrt(variance)
}

func (w *Window) exactVariance(mean float64) float64 {
	var acc float64
	for i := 0; i < w.count; i++ {
		d := w.buf[(w.head+i)%len(w.buf)] - mean
		acc += d * d
	}
	return acc / float64(w.count)
}

// Reset discards all samples, keeping the capacity.
func (w *Window) Reset() {
	w.head, w.count, w.sum, w.sumSq = 0, 0, 0, 0
}

// Samples appends the window contents, oldest first, to dst and returns the
// extended slice. It is intended for tests and diagnostics.
func (w *Window) Samples(dst []float64) []float64 {
	for i := 0; i < w.count; i++ {
		dst = append(dst, w.buf[(w.head+i)%len(w.buf)])
	}
	return dst
}

// Sigmoid returns 1/(1+e^(-x)), the logistic function used to smooth the
// acceleration factor K in Eq. (16) of the paper.
func Sigmoid(x float64) float64 {
	// For large |x| the naive form overflows/underflows harmlessly in
	// float64, but writing both branches keeps the result exact at the
	// saturation ends.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
