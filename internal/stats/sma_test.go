package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewWindowPanicsOnBadWidth(t *testing.T) {
	for _, width := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWindow(%d) did not panic", width)
				}
			}()
			NewWindow(width)
		}()
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Full() {
		t.Fatalf("empty window: Len=%d Full=%v", w.Len(), w.Full())
	}
	if w.Mean() != 0 {
		t.Errorf("empty Mean = %g, want 0", w.Mean())
	}
	if w.StdDev() != 0 {
		t.Errorf("empty StdDev = %g, want 0", w.StdDev())
	}
}

func TestWindowSingleSample(t *testing.T) {
	w := NewWindow(3)
	w.Push(7.5)
	if got := w.Mean(); got != 7.5 {
		t.Errorf("Mean = %g, want 7.5", got)
	}
	if got := w.StdDev(); got != 0 {
		t.Errorf("StdDev with 1 sample = %g, want 0", got)
	}
}

func TestWindowPartialFill(t *testing.T) {
	w := NewWindow(10)
	w.Push(1)
	w.Push(2)
	w.Push(3)
	if got, want := w.Mean(), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	// population stddev of {1,2,3} = sqrt(2/3)
	if got, want := w.StdDev(), math.Sqrt(2.0/3.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
	if w.Full() {
		t.Error("window reported Full with 3/10 samples")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, x := range []float64{10, 20, 30, 40} { // 10 evicted
		w.Push(x)
	}
	if !w.Full() {
		t.Fatal("window should be full")
	}
	if got, want := w.Mean(), 30.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean after eviction = %g, want %g", got, want)
	}
	got := w.Samples(nil)
	want := []float64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("Samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Samples = %v, want %v", got, want)
		}
	}
}

func TestWindowWidthOne(t *testing.T) {
	w := NewWindow(1)
	w.Push(5)
	w.Push(9)
	if got := w.Mean(); got != 9 {
		t.Errorf("Mean = %g, want 9", got)
	}
	if got := w.StdDev(); got != 0 {
		t.Errorf("StdDev = %g, want 0 for width-1 window", got)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Push(1)
	w.Push(2)
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 || w.StdDev() != 0 {
		t.Errorf("after Reset: Len=%d Mean=%g StdDev=%g", w.Len(), w.Mean(), w.StdDev())
	}
	w.Push(3)
	if got := w.Mean(); got != 3 {
		t.Errorf("Mean after Reset+Push = %g, want 3", got)
	}
}

// referenceStats computes mean/stddev of the last min(len, width) samples the
// slow, obviously-correct way.
func referenceStats(samples []float64, width int) (mean, std float64) {
	if len(samples) > width {
		samples = samples[len(samples)-width:]
	}
	if len(samples) == 0 {
		return 0, 0
	}
	for _, x := range samples {
		mean += x
	}
	mean /= float64(len(samples))
	if len(samples) < 2 {
		return mean, 0
	}
	for _, x := range samples {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(samples)))
}

func TestWindowMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		width := 1 + rng.Intn(12)
		w := NewWindow(width)
		var history []float64
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 10
			w.Push(x)
			history = append(history, x)
			wantMean, wantStd := referenceStats(history, width)
			if !almostEqual(w.Mean(), wantMean, 1e-9) {
				t.Fatalf("trial %d step %d: Mean=%g want %g", trial, i, w.Mean(), wantMean)
			}
			if !almostEqual(w.StdDev(), wantStd, 1e-9) {
				t.Fatalf("trial %d step %d: StdDev=%g want %g", trial, i, w.StdDev(), wantStd)
			}
		}
	}
}

func TestWindowStdDevNeverNegativeVariance(t *testing.T) {
	// Near-constant large samples stress the streaming variance formula;
	// the window must never return NaN.
	w := NewWindow(8)
	for i := 0; i < 1000; i++ {
		w.Push(1e12 + float64(i%2)*1e-3)
		if s := w.StdDev(); math.IsNaN(s) || s < 0 {
			t.Fatalf("step %d: StdDev = %g", i, s)
		}
	}
}

func TestSigmoidBasics(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := Sigmoid(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Sigmoid(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got, want := Sigmoid(1), 1/(1+math.Exp(-1)); !almostEqual(got, want, 1e-12) {
		t.Errorf("Sigmoid(1) = %g, want %g", got, want)
	}
}

func TestSigmoidPropertyQuick(t *testing.T) {
	// Symmetry: sigmoid(-x) == 1 - sigmoid(x); range within (0,1);
	// monotone nondecreasing.
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		s := Sigmoid(x)
		if s < 0 || s > 1 {
			return false
		}
		if !almostEqual(Sigmoid(-x), 1-s, 1e-9) {
			return false
		}
		return Sigmoid(x+1) >= s-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSamplesAppend(t *testing.T) {
	w := NewWindow(2)
	w.Push(1)
	w.Push(2)
	got := w.Samples([]float64{99})
	if len(got) != 3 || got[0] != 99 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Samples append = %v", got)
	}
}

func BenchmarkWindowPush(b *testing.B) {
	w := NewWindow(10)
	for i := 0; i < b.N; i++ {
		w.Push(float64(i))
		_ = w.StdDev()
	}
}
