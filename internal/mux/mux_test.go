package mux

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildFig1Example(t *testing.T) {
	// Fig. 1(c): signal 1 at ratio 2, signals 2 and 3 at ratio 4; frame
	// of 8 slots in the paper (4+2+2 slots used within L=4 here: lcm=4,
	// shares 2,1,1 -> fully used frame of 4).
	s, err := Build([]int64{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.FrameLen != 4 {
		t.Fatalf("frame = %d, want lcm(2,4,4)=4", s.FrameLen)
	}
	if got := s.Utilization(); got != 1.0 {
		t.Errorf("utilization = %g, want 1 (saturated edge)", got)
	}
	counts := map[int32]int{}
	for _, owner := range s.Slots {
		counts[owner]++
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("slot shares = %v", counts)
	}
}

func TestBuildRejectsIllegalRatios(t *testing.T) {
	cases := [][]int64{
		{0},       // zero
		{3},       // odd
		{-2},      // negative
		{2, 2, 2}, // reciprocals sum to 1.5
	}
	for _, ratios := range cases {
		if _, err := Build(ratios); err == nil {
			t.Errorf("Build(%v) accepted", ratios)
		}
	}
}

func TestBuildRejectsHugeFrames(t *testing.T) {
	// Pairwise-coprime odd halves make the lcm explode.
	if _, err := Build([]int64{2 * 3 * 5 * 7, 2 * 11 * 13 * 17, 2 * 19 * 23 * 29, 2 * 31 * 37}); err == nil {
		t.Error("huge lcm accepted")
	}
}

func TestBuildExactlySaturatedLegal(t *testing.T) {
	// 1/2 + 1/4 + 1/4 = 1 exactly.
	s, err := Build([]int64{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, owner := range s.Slots {
		if owner == Idle {
			t.Fatal("saturated edge has idle slot")
		}
	}
}

func TestGapsNearRatio(t *testing.T) {
	s, err := Build([]int64{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	gaps := s.Gaps()
	// WRR keeps each signal's worst gap within 2x its ratio.
	for i, r := range s.Ratios {
		if gaps[i] > 2*r {
			t.Errorf("signal %d (ratio %d): gap %d", i, r, gaps[i])
		}
		if gaps[i] < 1 {
			t.Errorf("signal %d: nonpositive gap %d", i, gaps[i])
		}
	}
}

func TestSimulateDeliversExactShares(t *testing.T) {
	s, err := Build([]int64{2, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 10
	stats := s.Simulate(frames)
	for i, r := range s.Ratios {
		want := frames * s.FrameLen / r
		if stats[i].Words != want {
			t.Errorf("signal %d: %d words, want %d", i, stats[i].Words, want)
		}
		if stats[i].MaxWait > 2*r {
			t.Errorf("signal %d: max wait %d exceeds 2x ratio %d", i, stats[i].MaxWait, r)
		}
	}
}

func TestVerifyEdge(t *testing.T) {
	if err := VerifyEdge(nil); err != nil {
		t.Errorf("empty edge: %v", err)
	}
	if err := VerifyEdge([]int64{2, 4, 8, 8}); err != nil {
		t.Errorf("legal edge rejected: %v", err)
	}
	if err := VerifyEdge([]int64{2, 2}); err != nil {
		t.Errorf("exactly saturated edge rejected: %v", err)
	}
	if err := VerifyEdge([]int64{2, 2, 2}); err == nil {
		t.Error("overloaded edge accepted")
	}
}

func TestStringRendering(t *testing.T) {
	s, err := Build([]int64{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "0") || !strings.Contains(str, "1") {
		t.Errorf("String() = %q", str)
	}
	big, err := Build([]int64{1024, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(big.String(), "Schedule{") {
		t.Errorf("long schedule should elide: %q", big.String())
	}
}

func TestSortedRatios(t *testing.T) {
	s, err := Build([]int64{8, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	sorted := s.SortedRatios()
	if sorted[0] != 2 || sorted[1] != 4 || sorted[2] != 8 {
		t.Errorf("sorted = %v", sorted)
	}
	// Original order preserved.
	if s.Ratios[0] != 8 {
		t.Error("SortedRatios mutated the schedule")
	}
}

func TestQuickRandomLegalRatioSetsSchedulable(t *testing.T) {
	// Any legal ratio multiset (even, power-of-two ratios with
	// reciprocal sum <= 1, as real TDM hardware uses) must build into a
	// verified schedule.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ratios []int64
		budgetNum, budgetDen := int64(1), int64(1) // remaining budget
		for i := 0; i < 1+rng.Intn(8); i++ {
			r := int64(2) << rng.Intn(6) // 2..128
			// accept if 1/r <= budget
			if budgetNum*r >= budgetDen {
				ratios = append(ratios, r)
				// budget -= 1/r
				budgetNum = budgetNum*r - budgetDen
				budgetDen *= r
				g := gcd(budgetNum, budgetDen)
				if g > 0 {
					budgetNum /= g
					budgetDen /= g
				}
			}
		}
		if len(ratios) == 0 {
			return true
		}
		return VerifyEdge(ratios) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildSchedule(b *testing.B) {
	ratios := []int64{2, 8, 8, 16, 16, 32, 32, 64, 64, 128}
	for i := 0; i < b.N; i++ {
		if _, err := Build(ratios); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSlotsOfAndIdleFraction(t *testing.T) {
	s, err := Build([]int64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Frame lcm(2,8)=8: signal 0 owns 4 slots, signal 1 owns 1, 3 idle.
	if got := s.SlotsOf(0); len(got) != 4 {
		t.Errorf("signal 0 slots = %v", got)
	}
	if got := s.SlotsOf(1); len(got) != 1 {
		t.Errorf("signal 1 slots = %v", got)
	}
	if u := s.Utilization(); u != 5.0/8.0 {
		t.Errorf("utilization = %g, want 0.625", u)
	}
}

func TestSimulateZeroFrames(t *testing.T) {
	s, err := Build([]int64{2})
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Simulate(0)
	if stats[0].Words != 0 || stats[0].MaxWait != 0 {
		t.Errorf("zero-frame stats = %+v", stats[0])
	}
}
