// Package mux models the TDM I/O structure of Fig. 1(b)(c) of the paper:
// the physical connection between two FPGAs is driven by a fast TDM clock,
// and each system-clock cycle is divided into time slots shared by the
// multiplexed signals. A signal with TDM ratio r owns 1/r of the slots —
// which is exactly why the reciprocals of the ratios on an edge must sum to
// at most 1.
//
// Given the legalized ratios of one edge, Build produces a concrete slot
// table (frame): signal i with ratio r_i receives L/r_i slots of a frame of
// length L, sequenced by largest-remainder weighted round robin so slots
// are close to evenly spaced. Simulate then replays frames and reports the
// delivered word counts and worst-case inter-slot gaps — the delay the
// paper's introduction attributes to multiplexing.
package mux

import (
	"errors"
	"fmt"
	"sort"
)

// ErrFrameTooLong reports that the ratios' least common multiple exceeds
// MaxFrameLen, so no slot table was built. Schedulability is not in
// question (any reciprocal sum <= 1 is frame-schedulable); the table is
// just too large to materialize.
var ErrFrameTooLong = errors.New("mux: frame length exceeds limit")

// Idle marks a frame slot owned by no signal.
const Idle = -1

// Schedule is the slot table of one edge for one direction.
type Schedule struct {
	// Ratios are the even TDM ratios the schedule realizes, by signal.
	Ratios []int64
	// FrameLen is the frame length L: the least common multiple of the
	// ratios, so every signal's share L/r_i is integral.
	FrameLen int64
	// Slots maps each slot of the frame to a signal index, or Idle.
	Slots []int32
}

// MaxFrameLen bounds the lcm-based frame length; ratios whose lcm exceeds
// it are rejected by Build (real TDM hardware uses power-of-two ratios
// precisely to keep frames short).
const MaxFrameLen = 1 << 20

// Build constructs the slot table for one edge. Each ratio must be a
// positive even integer and the reciprocals must sum to at most 1 (the edge
// constraint of Sec. II-A); otherwise an error describes the violation.
func Build(ratios []int64) (*Schedule, error) {
	for i, r := range ratios {
		if r < 2 || r%2 != 0 {
			return nil, fmt.Errorf("mux: signal %d: ratio %d is not a positive even integer", i, r)
		}
	}
	frame := int64(1)
	for _, r := range ratios {
		frame = lcm(frame, r)
		if frame > MaxFrameLen {
			return nil, fmt.Errorf("%w (%d slots, limit %d)", ErrFrameTooLong, frame, MaxFrameLen)
		}
	}
	// Capacity check: Σ frame/r_i <= frame, i.e. Σ 1/r_i <= 1, exactly.
	var used int64
	share := make([]int64, len(ratios))
	for i, r := range ratios {
		share[i] = frame / r
		used += share[i]
	}
	if used > frame {
		return nil, fmt.Errorf("mux: reciprocal sum exceeds 1: %d shares in a frame of %d", used, frame)
	}

	s := &Schedule{
		Ratios:   append([]int64(nil), ratios...),
		FrameLen: frame,
		Slots:    make([]int32, frame),
	}
	for t := range s.Slots {
		s.Slots[t] = Idle
	}
	// Weighted round robin by largest accumulated credit: each slot goes
	// to the signal with the highest credit (weight w_i = share_i/frame),
	// giving near-even spacing. Deterministic tie-break by signal index.
	credit := make([]int64, len(ratios)) // scaled by frame
	remaining := make([]int64, len(ratios))
	copy(remaining, share)
	for t := int64(0); t < frame; t++ {
		best := -1
		for i := range ratios {
			if remaining[i] == 0 {
				continue
			}
			credit[i] += share[i]
			if best == -1 || credit[i] > credit[best] {
				best = i
			}
		}
		if best == -1 {
			break // all shares placed; rest of frame is idle
		}
		credit[best] -= frame
		remaining[best]--
		s.Slots[t] = int32(best)
	}
	return s, nil
}

// SlotsOf returns the slot indices owned by signal i within the frame.
func (s *Schedule) SlotsOf(i int) []int64 {
	var out []int64
	for t, owner := range s.Slots {
		if int(owner) == i {
			out = append(out, int64(t))
		}
	}
	return out
}

// Utilization returns the fraction of frame slots that carry a signal.
func (s *Schedule) Utilization() float64 {
	if s.FrameLen == 0 {
		return 0
	}
	busy := 0
	for _, owner := range s.Slots {
		if owner != Idle {
			busy++
		}
	}
	return float64(busy) / float64(s.FrameLen)
}

// Gaps returns, for each signal, the maximum distance between consecutive
// owned slots across a frame boundary — the worst-case wait before the
// signal transmits again, in TDM-clock ticks. A signal with ratio r and
// perfectly even spacing would report exactly r.
func (s *Schedule) Gaps() []int64 {
	gaps := make([]int64, len(s.Ratios))
	for i := range s.Ratios {
		slots := s.SlotsOf(i)
		if len(slots) == 0 {
			continue
		}
		var worst int64
		for j := 1; j < len(slots); j++ {
			if d := slots[j] - slots[j-1]; d > worst {
				worst = d
			}
		}
		// Wrap-around gap to the next frame.
		if d := slots[0] + s.FrameLen - slots[len(slots)-1]; d > worst {
			worst = d
		}
		gaps[i] = worst
	}
	return gaps
}

// Stats is the outcome of Simulate for one signal.
type Stats struct {
	Words   int64 // words delivered
	MaxWait int64 // worst observed wait between transmissions, in ticks
}

// Simulate replays the schedule for the given number of frames and returns
// per-signal delivery statistics. It is the executable meaning of the TDM
// ratio: over F frames, signal i delivers F·L/r_i words.
func (s *Schedule) Simulate(frames int) []Stats {
	stats := make([]Stats, len(s.Ratios))
	last := make([]int64, len(s.Ratios))
	for i := range last {
		last[i] = -1
	}
	for f := 0; f < frames; f++ {
		base := int64(f) * s.FrameLen
		for t, owner := range s.Slots {
			if owner == Idle {
				continue
			}
			i := int(owner)
			now := base + int64(t)
			stats[i].Words++
			if last[i] >= 0 {
				if wait := now - last[i]; wait > stats[i].MaxWait {
					stats[i].MaxWait = wait
				}
			}
			last[i] = now
		}
	}
	return stats
}

// String renders a small schedule like the waveform row of Fig. 1(c):
// "0 1 0 2 0 1 0 -" with '-' for idle slots. Frames longer than 64 slots
// are elided.
func (s *Schedule) String() string {
	if s.FrameLen > 64 {
		return fmt.Sprintf("Schedule{L=%d, %d signals}", s.FrameLen, len(s.Ratios))
	}
	out := make([]byte, 0, 2*s.FrameLen)
	for _, owner := range s.Slots {
		if len(out) > 0 {
			out = append(out, ' ')
		}
		if owner == Idle {
			out = append(out, '-')
		} else {
			out = append(out, []byte(fmt.Sprintf("%d", owner))...)
		}
	}
	return string(out)
}

// VerifyEdge builds and checks a schedule for every edge of a solution-like
// ratio set and returns the total frame utilization statistics; it is used
// by tests as an independent semantic check of solution legality.
func VerifyEdge(ratios []int64) error {
	if len(ratios) == 0 {
		return nil
	}
	s, err := Build(ratios)
	if err != nil {
		return err
	}
	// Every signal must own exactly L/r slots.
	counts := make([]int64, len(ratios))
	for _, owner := range s.Slots {
		if owner != Idle {
			counts[owner]++
		}
	}
	for i, r := range ratios {
		if counts[i] != s.FrameLen/r {
			return fmt.Errorf("mux: signal %d owns %d slots, want %d", i, counts[i], s.FrameLen/r)
		}
	}
	return nil
}

// SortedRatios returns the ratios in non-decreasing order (a convenience
// for display).
func (s *Schedule) SortedRatios() []int64 {
	out := append([]int64(nil), s.Ratios...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	return a / gcd(a, b) * b
}
