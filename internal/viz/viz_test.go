package viz

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d, want 8: %q", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("endpoints = %c %c", runes[0], runes[7])
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone input produced non-monotone sparkline %q", s)
		}
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("nil input")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width")
	}
	// Constant series: all glyphs identical.
	s := Sparkline([]float64{3, 3, 3}, 5)
	for _, r := range s {
		if r != '▁' {
			t.Errorf("constant series rendered %q", s)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"LR", "route"}, []float64{67.75, 24.11}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "67.75") || !strings.Contains(lines[1], "24.11") {
		t.Errorf("values missing:\n%s", out)
	}
	if strings.Count(lines[0], "█") <= strings.Count(lines[1], "█") {
		t.Errorf("larger value got shorter bar:\n%s", out)
	}
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("mismatched lengths accepted")
	}
}

func TestCurves(t *testing.T) {
	z := []float64{10, 8, 6, 5, 4.5, 4.2, 4.1}
	lb := []float64{1, 2, 3, 3.5, 3.8, 3.9, 4.0}
	out := Curves([][]float64{z, lb}, []string{"z", "LB"}, 8, 30)
	if !strings.Contains(out, "z") || !strings.Contains(out, "LB") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "10") || !strings.Contains(out, "1") {
		t.Errorf("range labels missing:\n%s", out)
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Errorf("series glyphs missing:\n%s", out)
	}
	if Curves(nil, nil, 8, 30) != "" {
		t.Error("empty series accepted")
	}
	if Curves([][]float64{z}, nil, 1, 30) != "" {
		t.Error("degenerate rows accepted")
	}
}

func TestCurvesConstantSeries(t *testing.T) {
	out := Curves([][]float64{{5, 5, 5}}, []string{"flat"}, 4, 10)
	if out == "" {
		t.Fatal("constant series rendered empty")
	}
}
