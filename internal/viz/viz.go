// Package viz renders small ASCII charts for the terminal tools: the
// Fig. 3(b) convergence curves and the Fig. 3(a) runtime-share bars, with
// no dependencies beyond the standard library.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// sparkGlyphs are the eighth-block glyphs used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single line of block glyphs, resampled to
// width columns. Empty input or non-positive width yields "".
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for c := 0; c < width; c++ {
		v := sample(values, c, width)
		idx := 0
		if hi > lo {
			idx = cell((v-lo)/(hi-lo), len(sparkGlyphs))
		}
		sb.WriteRune(sparkGlyphs[idx])
	}
	return sb.String()
}

// cell maps a [0,1] fraction onto a cell index 0..n-1, clamping in the
// float domain first: converting a NaN or out-of-range float to int is
// platform-defined, so NaN series values must not reach the conversion (the
// old post-conversion clamp made the rendering differ across platforms).
func cell(frac float64, n int) int {
	if !(frac > 0) { // also catches NaN
		return 0
	}
	if frac >= 1 {
		return n - 1
	}
	//lint:ignore floatcast frac is bounded to (0,1) by the branches above
	return int(frac * float64(n-1))
}

// sample picks the value for column c of width by nearest-index resampling.
func sample(values []float64, c, width int) float64 {
	idx := c * (len(values) - 1)
	if width > 1 {
		idx /= width - 1
	}
	if idx >= len(values) {
		idx = len(values) - 1
	}
	return values[idx]
}

// Bars renders labeled horizontal bars scaled so the largest value spans
// width characters. Labels are right-padded to equal length.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width <= 0 {
		return ""
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var sb strings.Builder
	for i, l := range labels {
		n := 0
		if maxVal > 0 {
			n = cell(values[i]/maxVal, width+1)
		}
		fmt.Fprintf(&sb, "%-*s |%s %.2f\n", maxLabel, l, strings.Repeat("█", n), values[i])
	}
	return sb.String()
}

// Curves renders one or more series into a rows x cols character grid with
// a shared linear y-scale, one glyph per series, plus a compact legend and
// the y-range. Series shorter than cols are resampled.
func Curves(series [][]float64, names []string, rows, cols int) string {
	if len(series) == 0 || rows < 2 || cols < 2 {
		return ""
	}
	glyphs := []rune("*o+x#@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		if len(s) == 0 {
			continue
		}
		g := glyphs[si%len(glyphs)]
		for c := 0; c < cols; c++ {
			v := sample(s, c, cols)
			r := cell((hi-v)/(hi-lo), rows)
			grid[r][c] = g
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.4g\n", hi)
	for _, row := range grid {
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%.4g\n", lo)
	for si, name := range names {
		if si >= len(series) {
			break
		}
		fmt.Fprintf(&sb, "%c %s  ", glyphs[si%len(glyphs)], name)
	}
	if len(names) > 0 {
		sb.WriteByte('\n')
	}
	return sb.String()
}
