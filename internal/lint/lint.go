// Package lint is a stdlib-only static-analysis framework enforcing the
// solver's determinism, overflow, concurrency, and cancellation invariants.
// It loads and type-checks the module with go/parser + go/types (no x/tools
// dependency), in parallel topological levels through internal/par, and
// propagates cross-package function facts ("this function blocks", "this
// function observes its context", "this function iterates") bottom-up in
// dependency order. Eight analyzers run over every package:
//
// Syntax-level (v1):
//
//   - floatcast: float→integer conversions with no saturation or finiteness
//     guard (the conversion is platform-defined when the value overflows).
//   - maporder: map-range loops in solver packages whose bodies append to
//     slices, write output, or accumulate floats — map iteration order would
//     leak into results and break run-to-run determinism.
//   - rawgo: go statements, sync.WaitGroup, or channel construction outside
//     internal/par — all parallelism must flow through the deterministic
//     fork-join helpers.
//   - floateq: == or != between floating-point operands (comparisons with
//     the constant 0 sentinel are allowed).
//
// Dataflow-aware (v2):
//
//   - ctxflow: an exported function that accepts a context.Context and never
//     consults or forwards it drops cancellation on the floor; a loop in a
//     solver package that transitively performs iterative work must observe
//     its context at some boundary.
//   - mutexhold: in the serving tier, a sync.Mutex/RWMutex must never be
//     held across a blocking operation — channel sends/receives, selects
//     without default, net/http calls, writes to abstract io.Writers, or
//     calls to functions carrying the blocks fact.
//   - satarith: wide (*, +, <<) integer arithmetic on cost/usage/slot/ratio
//     values outside internal/problem's saturating helpers.
//   - detsource: nondeterminism sources in solver packages (time.Now,
//     math/rand) and order-dependent map iteration in result-handling
//     packages beyond maporder's allowlist.
//
// A finding is suppressed by a "//lint:ignore <analyzer> <reason>" comment
// on the flagged line or on the line directly above it, or — for files
// whose every use of a primitive is justified by the same reason, such as
// server plumbing packages full of rawgo sites — by one
// "//lint:file-ignore <analyzer> <reason>" comment anywhere in the file.
// Unused or malformed directives of either form are themselves errors.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a mechanical rewrite that resolves the finding;
	// tdmlint -fix applies it.
	Fix *Fix
}

// Fix is a textual replacement within one file.
type Fix struct {
	// File is the path as recorded by the loader (absolute for module
	// files).
	File string
	// Start and End are byte offsets of the replaced range within File.
	Start, End int
	// NewText replaces the range.
	NewText string
	// NeedsImport, when non-empty, names an import path the rewritten file
	// must import.
	NeedsImport string
}

// String formats the finding as "file:line: analyzer: message". The file is
// printed as given in Pos (the loader records module-root-relative paths for
// module files).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Config selects what to analyze.
type Config struct {
	// Dir is any directory inside the target module; go.mod is located by
	// walking upward. Empty means the current directory.
	Dir string
	// Patterns restricts which packages are analyzed (the whole module is
	// always loaded so imports resolve). Each pattern is a module-relative
	// directory ("internal/tdm", "./internal/tdm") or "./..." / "dir/..."
	// for a subtree. Empty analyzes every package.
	Patterns []string
	// IncludeTests also analyzes _test.go files and external test packages.
	IncludeTests bool
	// Analyzers names the analyzers to run; empty runs all of them.
	Analyzers []string
	// SolverPkgs lists the import paths (each also covering its subtree)
	// where maporder, ctxflow's loop rule, satarith, and detsource apply.
	// Nil selects the solver packages of this repository:
	// internal/{graph,route,tdm,problem,baseline} under the module path.
	SolverPkgs []string
	// ParAllowed lists the import paths allowed to use raw concurrency
	// primitives. Nil selects internal/par under the module path.
	ParAllowed []string
	// ServePkgs lists the serving-tier import paths where mutexhold
	// applies. Nil selects internal/serve and internal/coord under the
	// module path.
	ServePkgs []string
	// SatExempt lists the packages exempt from satarith because they own
	// the saturating helpers. Nil selects internal/problem under the
	// module path.
	SatExempt []string
	// Workers bounds the loader's parallelism; 0 selects GOMAXPROCS.
	Workers int
}

// defaultSolverSuffixes are the packages whose iteration order feeds solver
// output; see Config.SolverPkgs.
var defaultSolverSuffixes = []string{
	"internal/graph", "internal/route", "internal/tdm", "internal/problem", "internal/baseline",
}

// Run loads the module containing cfg.Dir and returns every finding of the
// selected analyzers on the selected packages, sorted by position. A nil
// error with a non-empty slice means the tree has violations; loading or
// type-checking failures return an error.
func Run(cfg Config) ([]Finding, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	root, modPath, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := loadModule(root, modPath, cfg.IncludeTests, cfg.Workers)
	if err != nil {
		return nil, err
	}

	analyzers, err := selectAnalyzers(cfg.Analyzers)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}

	solver := cfg.SolverPkgs
	if solver == nil {
		for _, s := range defaultSolverSuffixes {
			solver = append(solver, modPath+"/"+s)
		}
	}
	parAllowed := cfg.ParAllowed
	if parAllowed == nil {
		parAllowed = []string{modPath + "/internal/par"}
	}
	servePkgs := cfg.ServePkgs
	if servePkgs == nil {
		servePkgs = []string{modPath + "/internal/serve", modPath + "/internal/coord"}
	}
	satExempt := cfg.SatExempt
	if satExempt == nil {
		satExempt = []string{modPath + "/internal/problem"}
	}

	var findings []Finding
	for _, pkg := range mod.Pkgs {
		if !matchesPatterns(pkg.RelDir, cfg.Patterns) {
			continue
		}
		pass := &Pass{
			Fset:       mod.Fset,
			Pkg:        pkg,
			SolverPkgs: solver,
			ParAllowed: parAllowed,
			ServePkgs:  servePkgs,
			SatExempt:  satExempt,
			Facts:      mod.Facts,
			ModPath:    modPath,
			root:       root,
		}
		var dirs []*directive
		for _, f := range pkg.Files {
			dirs = append(dirs, collectDirectives(mod.Fset, f, known)...)
		}
		for _, d := range dirs {
			d.pos = relPos(d.pos, root) // findings use module-relative files
		}
		for _, a := range analyzers {
			pass.analyzer = a.Name
			a.Run(pass)
		}
		// Apply suppressions, then report bad and unused directives.
		for _, f := range pass.findings {
			suppressed := false
			for _, d := range dirs {
				if d.matches(f.Analyzer, f.Pos) {
					d.used = true
					suppressed = true
					break
				}
			}
			if !suppressed {
				findings = append(findings, f)
			}
		}
		for _, d := range dirs {
			switch {
			case d.bad != "":
				findings = append(findings, Finding{Pos: relPos(d.pos, root), Analyzer: "ignore", Message: d.bad})
			case !d.used && selected[d.analyzer]:
				// A directive for an analyzer that did not run this
				// invocation is not provably stale; only full runs can
				// judge it unused.
				findings = append(findings, Finding{
					Pos:      relPos(d.pos, root),
					Analyzer: "ignore",
					Message:  fmt.Sprintf("unused %s directive for %s", d.name(), d.analyzer),
					Fix:      d.removalFix(),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// selectAnalyzers resolves names against the registry; empty selects all.
func selectAnalyzers(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// matchesPatterns reports whether the module-relative package directory is
// selected. Empty patterns select everything.
func matchesPatterns(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		p = strings.TrimPrefix(strings.TrimSuffix(p, "/"), "./")
		if p == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if p == "" || p == "." {
			if rel == "." {
				return true
			}
			continue
		}
		if rel == p {
			return true
		}
	}
	return false
}
