package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Fact is one bit of cross-package knowledge about a function, computed
// bottom-up in dependency order so that by the time a package is analyzed,
// the facts of everything it calls are final. Facts are the dataflow
// substrate of the v2 analyzers: mutexhold consults FactBlocks to know
// whether a call may block, ctxflow consults FactObservesCtx to decide
// whether passing a context into a callee counts as observing it, and
// FactLoops marks the transitive "does iterative work" property that
// distinguishes a heavy solver loop from a field copy.
type Fact uint8

const (
	// FactBlocks marks a function that may block the calling goroutine on
	// something other than plain computation: a channel operation, a select
	// with no default, sync.WaitGroup.Wait / sync.Cond.Wait, time.Sleep, a
	// write to an abstract io.Writer (which may be a network connection), a
	// known-blocking net/http or net call, or — transitively — a call to a
	// function already carrying this fact.
	FactBlocks Fact = 1 << iota
	// FactObservesCtx marks a function that actually consults a
	// context.Context it was given: it calls Done/Err/Deadline/Value on a
	// ctx parameter, or forwards that parameter to a callee that observes
	// it. A function that accepts a ctx and carries this fact is a valid
	// cancellation boundary.
	FactObservesCtx
	// FactLoops marks a function whose execution is iterative: its body
	// contains a for/range statement, or it calls a function carrying this
	// fact. Calling a FactLoops function from inside a loop is the shape of
	// routing/LR/refine work whose duration warrants a cancellation check.
	FactLoops
)

// FactSet maps declared functions to their facts, accumulated across the
// whole module as packages are checked in dependency order.
type FactSet struct {
	m map[*types.Func]Fact
}

// newFactSet returns an empty fact set.
func newFactSet() *FactSet { return &FactSet{m: map[*types.Func]Fact{}} }

// Has reports whether fn carries the fact. Nil or unknown functions carry
// none (unknown callees are assumed cheap and non-blocking: facts must be
// sound for the code we can see, silent for the code we cannot).
func (fs *FactSet) Has(fn *types.Func, f Fact) bool {
	if fs == nil || fn == nil {
		return false
	}
	return fs.m[fn]&f != 0
}

// Blocks reports FactBlocks for fn.
func (fs *FactSet) Blocks(fn *types.Func) bool { return fs.Has(fn, FactBlocks) }

// ObservesCtx reports FactObservesCtx for fn.
func (fs *FactSet) ObservesCtx(fn *types.Func) bool { return fs.Has(fn, FactObservesCtx) }

// Loops reports FactLoops for fn.
func (fs *FactSet) Loops(fn *types.Func) bool { return fs.Has(fn, FactLoops) }

// merge folds a per-package fact map into the module-wide set. Called on the
// driver goroutine between parallel type-check levels, in deterministic
// package order.
func (fs *FactSet) merge(pkg map[*types.Func]Fact) {
	for fn, f := range pkg {
		fs.m[fn] |= f
	}
}

// stdBlocking lists standard-library functions and methods that block, by
// full go/types object string prefix. Method entries use the canonical
// "(pkg.Recv).Name" form. The table is deliberately small: it seeds the
// transitive FactBlocks computation; most propagation happens through
// module-internal calls.
var stdBlocking = map[string]bool{
	"time.Sleep":                        true,
	"(*sync.WaitGroup).Wait":            true,
	"(*sync.Cond).Wait":                 true,
	"net/http.Get":                      true,
	"net/http.Post":                     true,
	"net/http.PostForm":                 true,
	"net/http.Head":                     true,
	"net/http.ListenAndServe":           true,
	"net/http.ListenAndServeTLS":        true,
	"(*net/http.Client).Do":             true,
	"(*net/http.Client).Get":            true,
	"(*net/http.Client).Post":           true,
	"(*net/http.Client).PostForm":       true,
	"(*net/http.Client).Head":           true,
	"(*net/http.Server).ListenAndServe": true,
	"(*net/http.Server).Serve":          true,
	"(*net/http.Server).Shutdown":       true,
	"net.Dial":                          true,
	"net.DialTimeout":                   true,
	"net.Listen":                        true,
	"io.Copy":                           true,
	"io.CopyN":                          true,
	"io.ReadAll":                        true,
	"(*os/exec.Cmd).Run":                true,
	"(*os/exec.Cmd).Wait":               true,
	"(*os/exec.Cmd).Output":             true,
	"(*os/exec.Cmd).CombinedOutput":     true,
}

// safeWriterTypes are concrete in-memory sinks: fmt.Fprint*/Write* calls
// aimed at them never block. Anything written through an abstract io.Writer
// may reach a socket and counts as blocking.
var safeWriterTypes = map[string]bool{
	"*bytes.Buffer":    true,
	"*strings.Builder": true,
}

// funcKey renders a *types.Func in the form used by stdBlocking.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + fn.Name()
}

// computeFacts derives the facts of every function declared in pkg, given
// the already-final facts of its dependencies. It iterates to a fixpoint
// within the package so intra-package call chains and mutual recursion
// resolve regardless of declaration order.
func computeFacts(pkg *Package, global *FactSet) map[*types.Func]Fact {
	info := pkg.Info

	// Collect the declared functions and their bodies.
	type declared struct {
		fn   *types.Func
		body *ast.BlockStmt
		ctx  *types.Var // the context.Context parameter, if any
	}
	var decls []declared
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declared{fn: fn, body: fd.Body, ctx: ctxParam(info, fd.Type)})
		}
	}

	local := map[*types.Func]Fact{}
	lookup := func(fn *types.Func) Fact {
		if f, ok := local[fn]; ok {
			return f
		}
		if global != nil {
			return global.m[fn]
		}
		return 0
	}

	// Fixpoint: each round scans every body; facts only grow, so the loop
	// terminates in at most len(decls) * numFacts rounds (in practice 2-3).
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			have := local[d.fn]
			derived := scanBody(info, d.body, d.ctx, lookup)
			if derived|have != have {
				local[d.fn] = derived | have
				changed = true
			}
		}
	}
	return local
}

// ctxParam returns the function's context.Context parameter variable, or nil.
func ctxParam(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// scanBody derives the facts observable in one function body, resolving
// callee facts through lookup.
func scanBody(info *types.Info, body *ast.BlockStmt, ctx *types.Var, lookup func(*types.Func) Fact) Fact {
	var facts Fact
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Facts inside a literal belong to the enclosing function: the
			// literal usually runs on its behalf (deferred unlocks, par
			// closures). This over-approximates for stored closures, which
			// is the safe direction for blocks/loops and matches how the
			// solver uses its ctx (closures capture the outer ctx).
			return true
		case *ast.ForStmt, *ast.RangeStmt:
			facts |= FactLoops
		case *ast.SendStmt:
			facts |= FactBlocks
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				facts |= FactBlocks
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				facts |= FactBlocks
			}
		case *ast.CallExpr:
			facts |= callFacts(info, n, ctx, lookup)
		}
		return true
	})
	return facts
}

// selectHasDefault reports whether the select has a default clause (making
// it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// callFacts derives the facts contributed by one call expression.
func callFacts(info *types.Info, call *ast.CallExpr, ctx *types.Var, lookup func(*types.Func) Fact) Fact {
	var facts Fact
	callee := calleeFunc(info, call)

	// Direct observation: ctx.Done() / Err() / Deadline() / Value().
	if ctx != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == ctx {
				switch sel.Sel.Name {
				case "Done", "Err", "Deadline", "Value":
					facts |= FactObservesCtx
				}
			}
		}
	}

	if callee != nil {
		key := funcKey(callee)
		if stdBlocking[key] {
			facts |= FactBlocks
		}
		cf := lookup(callee)
		if cf&FactBlocks != 0 {
			facts |= FactBlocks
		}
		if cf&FactLoops != 0 {
			facts |= FactLoops
		}
		// Forwarding the ctx parameter to an observer counts as observing.
		if ctx != nil && cf&FactObservesCtx != 0 && passesVar(info, call, ctx) {
			facts |= FactObservesCtx
		}
		// context.WithCancel/WithTimeout/WithDeadline derive a child whose
		// machinery watches the parent: forwarding ctx there is observation.
		if ctx != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" && passesVar(info, call, ctx) {
			switch callee.Name() {
			case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
				facts |= FactObservesCtx
			}
		}
	}

	// Writes through an abstract writer may reach a socket.
	if isAbstractWriterCall(info, call) {
		facts |= FactBlocks
	}
	return facts
}

// calleeFunc resolves the statically-known callee of a call, or nil for
// dynamic calls (func values, interface methods resolve to the interface
// method object, which is fine — facts attach to it too if computed).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// passesVar reports whether any argument of the call mentions the variable.
func passesVar(info *types.Info, call *ast.CallExpr, v *types.Var) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isAbstractWriterCall reports whether the call pushes bytes through a
// writer whose concrete destination is unknown: fmt.Fprint* with a
// non-concrete first argument, or a Write/WriteString/Flush method on an
// interface-typed receiver. Writes into *bytes.Buffer / *strings.Builder
// are in-memory and never block.
func isAbstractWriterCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Fprint / Fprintf / Fprintln: inspect the destination argument.
	if x, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[x].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
				return !isSafeWriter(info.TypeOf(call.Args[0]))
			}
			return false
		}
	}
	// writer.Write([]byte) / WriteString / Flush on an abstract receiver.
	switch sel.Sel.Name {
	case "Write", "WriteString", "Flush":
	default:
		return false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if _, ok := recv.Underlying().(*types.Interface); ok {
		return true
	}
	return false
}

// isSafeWriter reports whether the destination type is a concrete in-memory
// sink.
func isSafeWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return safeWriterTypes[types.TypeString(t, nil)]
}

// sortedFuncs returns the fact map's keys in a deterministic order, for
// tests and debugging output.
func sortedFuncs(m map[*types.Func]Fact) []*types.Func {
	out := make([]*types.Func, 0, len(m))
	for fn := range m {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return funcKey(out[i]) < funcKey(out[j]) })
	return out
}
