package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMutationsResurrectHistoricalBugs writes a throwaway module seeded with
// the exact shapes of bugs earlier PRs fixed by hand, and asserts each
// analyzer convicts its class. This is the analyzer suite's reason to exist:
// if one of these shapes stops being caught, the regression is in the
// analyzer, not the solver.
//
//   - satarith:  the ratio-doubling overflow the legalizer shipped with
//     (a TDM ratio near 2^62 shifted left wraps into a negative "legal"
//     value) before the saturating helpers existed.
//   - ctxflow:   a solve entry point accepting a context it never threads
//     into its routing loop — cancellation silently dropped.
//   - mutexhold: the serving-tier drain/broadcast race: notifying
//     subscriber channels while the state mutex is held, so one stuck
//     subscriber wedges every request.
//   - detsource: a wall-clock tie-break inside net ordering, breaking
//     byte-identical replay.
func TestMutationsResurrectHistoricalBugs(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module mutant\n\ngo 1.22\n",
		"solver/solver.go": `package solver

import (
	"context"
	"time"
)

// legalizeRatio is the PR-1 overflow shape: doubling a ratio near the top
// of its range wraps negative and passes the legality check.
func legalizeRatio(ratio int64, shift uint) int64 {
	return ratio << shift
}

// Solve is the dropped-context shape: the routing loop never observes ctx.
func Solve(ctx context.Context, nets int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for n := 0; n < nets; n++ {
		total += route(n)
	}
	return total
}

func route(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// tieBreak is the wall-clock nondeterminism shape.
func tieBreak(a, b int) int {
	if time.Now().UnixNano()%2 == 0 {
		return a
	}
	return b
}
`,
		"serve/serve.go": `package serve

import "sync"

type hub struct {
	mu   sync.Mutex
	subs []chan int
	seq  int
}

// broadcast is the PR-6 drain-race shape: subscriber sends under the state
// lock, so one stuck subscriber wedges every caller.
func (h *hub) broadcast() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	for _, ch := range h.subs {
		ch <- h.seq
	}
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	findings, err := Run(Config{
		Dir:        dir,
		SolverPkgs: []string{"mutant/solver"},
		ServePkgs:  []string{"mutant/serve"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	count := map[string]int{}
	for _, f := range findings {
		count[f.Analyzer]++
	}
	wantAtLeast := map[string]int{
		"satarith":  1, // the ratio shift
		"ctxflow":   1, // the unobserved routing loop
		"mutexhold": 1, // the send under h.mu
		"detsource": 1, // the time.Now tie-break
	}
	for analyzer, n := range wantAtLeast {
		if count[analyzer] < n {
			t.Errorf("%s: got %d findings on the seeded mutant, want >= %d\nall findings:\n%s",
				analyzer, count[analyzer], n, findingsList(findings))
		}
	}

	// Each conviction must land in the file carrying its shape.
	wantFile := map[string]string{
		"satarith":  "solver/solver.go",
		"ctxflow":   "solver/solver.go",
		"detsource": "solver/solver.go",
		"mutexhold": "serve/serve.go",
	}
	for _, f := range findings {
		if want, ok := wantFile[f.Analyzer]; ok && f.Pos.Filename != want {
			t.Errorf("%s finding in %s, want %s: %s", f.Analyzer, f.Pos.Filename, want, f.Message)
		}
	}
}

func findingsList(findings []Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}

// TestMutationFixRepairsRatioOverflow runs ApplyFixes on the seeded
// satarith mutant and verifies the rewrite routes through the saturating
// helper and still parses.
func TestMutationFixRepairsRatioOverflow(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module mutant\n\ngo 1.22\n")
	write("internal/problem/sat.go", `package problem

func SatShl64(v int64, k uint) int64 { return v << k }
func SatMul64(a, b int64) int64      { return a * b }
func SatAdd64(a, b int64) int64      { return a + b }
`)
	write("solver/solver.go", `package solver

func legalizeRatio(ratio int64, shift uint) int64 {
	return ratio << shift
}
`)

	cfg := Config{Dir: dir, SolverPkgs: []string{"mutant/solver"}}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	changed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) != 1 || !strings.HasSuffix(changed[0], "solver/solver.go") {
		t.Fatalf("ApplyFixes changed %v, want solver/solver.go", changed)
	}
	src, err := os.ReadFile(filepath.Join(dir, "solver/solver.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "problem.SatShl64(ratio, shift)") {
		t.Errorf("fix did not route through the helper:\n%s", src)
	}
	// The repaired mutant must lint clean.
	after, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run after fix: %v", err)
	}
	if len(after) != 0 {
		t.Errorf("repaired mutant still has findings:\n%s", findingsList(after))
	}
}
