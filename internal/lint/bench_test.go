package lint

import "testing"

// BenchmarkRunFullTree measures a whole-repository run of all eight
// analyzers — parse, parallel type-check in topological levels, fact
// propagation, analysis, suppression. The budget is a handful of seconds
// per run; the parallel loader and the memoized source importer are what
// keep it there.
func BenchmarkRunFullTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := Run(Config{Dir: "../.."})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("tree not clean: %d findings", len(findings))
		}
	}
}
