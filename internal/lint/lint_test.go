package lint

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file with the current findings")

// fixtureConfig analyzes the seeded fixture module under testdata/src:
// the maporder/ctxflow/satarith/detsource fixtures play the solver packages,
// mutexhold plays the serving tier, and rawgo_allowed is the raw-concurrency
// exception. detmaps is deliberately left out of every list so detsource's
// extended map rule applies to it.
func fixtureConfig() Config {
	return Config{
		Dir:        "testdata/src",
		SolverPkgs: []string{"fixture/maporder", "fixture/ctxflow", "fixture/satarith", "fixture/detsource"},
		ParAllowed: []string{"fixture/rawgo_allowed"},
		ServePkgs:  []string{"fixture/mutexhold"},
	}
}

// TestFixturesGolden compares every finding on the fixture module against
// the checked-in golden file. Regenerate with: go test ./internal/lint -run
// Golden -update
func TestFixturesGolden(t *testing.T) {
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()

	const golden = "testdata/findings.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestEachAnalyzerDetectsItsFixture asserts the deliberately-seeded
// violation in each fixture package is caught by the matching analyzer, and
// that the unused/malformed directives are reported.
func TestEachAnalyzerDetectsItsFixture(t *testing.T) {
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	count := map[string]int{} // "pkgdir/analyzer" -> findings
	for _, f := range findings {
		dir := strings.SplitN(f.Pos.Filename, "/", 2)[0]
		count[dir+"/"+f.Analyzer]++
	}
	want := map[string]int{
		"floatcast/floatcast": 1, // Bad; guarded/clamped/suppressed stay silent
		"maporder/maporder":   3, // BadAppend, BadPrint, BadFloatSum
		"rawgo/rawgo":         3, // WaitGroup, make(chan), go statement
		"floateq/floateq":     2, // BadEq, BadNeqConst
		"fileignore/floateq":  1, // BadEq: file-ignore rawgo is per-analyzer
		"unusedignore/ignore": 3, // stale directive + missing reason + stale file-ignore
		"ctxflow/ctxflow":     3, // BadUnnamed, BadUnused, BadLoop
		"ctxflow/ignore":      1, // StaleDirective
		"mutexhold/mutexhold": 4, // BadSend, BadWriter, BadFactCall, BadSelect
		"mutexhold/ignore":    1, // StaleDirective
		"satarith/satarith":   4, // BadMul, BadAddAssign, BadShift, BadNarrow
		"satarith/ignore":     1, // StaleDirective
		"detsource/detsource": 2, // BadClock, BadRand
		"detsource/ignore":    1, // StaleDirective
		"detmaps/detsource":   1, // BadCollect; GoodCollectSort is collect-then-sort
		"detmaps/ignore":      1, // StaleDirective
	}
	for key, n := range want {
		if count[key] != n {
			t.Errorf("%s: got %d findings, want %d", key, count[key], n)
		}
	}
	for key, n := range count {
		if want[key] == 0 {
			t.Errorf("unexpected findings %s: %d (allowed package or suppression leaked?)", key, n)
		}
	}
}

// TestSuppressionsAreExact ensures no finding from a fixture line marked
// suppressed leaks through, and rawgo_allowed is fully exempt.
func TestSuppressionsAreExact(t *testing.T) {
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each new-analyzer fixture seeds exactly one deliberately-stale
	// directive; all other directive findings live in unusedignore.
	staleSeeded := []string{"unusedignore/", "ctxflow/", "mutexhold/", "satarith/", "detsource/", "detmaps/"}
	for _, f := range findings {
		if strings.HasPrefix(f.Pos.Filename, "rawgo_allowed/") {
			t.Errorf("finding in ParAllowed package: %s", f)
		}
		if f.Analyzer == "ignore" {
			ok := false
			for _, p := range staleSeeded {
				if strings.HasPrefix(f.Pos.Filename, p) {
					ok = true
				}
			}
			if !ok {
				t.Errorf("directive problem outside the stale-seeded fixtures: %s", f)
			}
		}
	}
}

// TestPatternsRestrictAnalysis checks package pattern matching.
func TestPatternsRestrictAnalysis(t *testing.T) {
	cfg := fixtureConfig()
	cfg.Patterns = []string{"./floateq"}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings for ./floateq, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "floateq" {
			t.Errorf("unexpected analyzer %s in pattern-restricted run", f.Analyzer)
		}
	}
}

// TestSelectAnalyzers checks the -only subset and unknown-name errors.
func TestSelectAnalyzers(t *testing.T) {
	cfg := fixtureConfig()
	cfg.Analyzers = []string{"rawgo"}
	cfg.Patterns = []string{"rawgo"}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 3 {
		t.Errorf("rawgo-only run: got %d findings, want 3: %v", len(findings), findings)
	}

	cfg.Analyzers = []string{"nosuch"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}

// TestBuildTagsRespected proves the loader evaluates //go:build lines: the
// buildtags fixture declares the same constant in two mutually exclusive
// tagged files, which type-checks only if exactly one is loaded.
func TestBuildTagsRespected(t *testing.T) {
	if _, err := Run(fixtureConfig()); err != nil {
		t.Fatalf("Run failed on module with build-tagged files: %v", err)
	}
}

func TestMatchesPatterns(t *testing.T) {
	cases := []struct {
		rel  string
		pats []string
		want bool
	}{
		{"internal/tdm", nil, true},
		{"internal/tdm", []string{"./..."}, true},
		{"internal/tdm", []string{"internal/tdm"}, true},
		{"internal/tdm", []string{"./internal/tdm"}, true},
		{"internal/tdm", []string{"internal/..."}, true},
		{"internal/tdm", []string{"internal"}, false},
		{"internal/tdm", []string{"cmd/..."}, false},
		{".", []string{"."}, true},
		{".", []string{"internal/..."}, false},
	}
	for _, c := range cases {
		if got := matchesPatterns(c.rel, c.pats); got != c.want {
			t.Errorf("matchesPatterns(%q, %v) = %v, want %v", c.rel, c.pats, got, c.want)
		}
	}
}
