package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore or //lint:file-ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
	// file/startOff/endOff record the comment's exact byte range in the
	// file as loaded, for the -fix removal of stale directives.
	file             string
	startOff, endOff int
	// filewide marks a //lint:file-ignore: it suppresses every finding of
	// its analyzer in the whole file, wherever it appears in the file.
	filewide bool
	// bad holds a parse problem; bad directives are reported instead of
	// applied.
	bad string
}

const (
	directivePrefix     = "lint:ignore"
	fileDirectivePrefix = "lint:file-ignore"
)

// name returns the directive's comment form, for diagnostics.
func (d *directive) name() string {
	if d.filewide {
		return "//" + fileDirectivePrefix
	}
	return "//" + directivePrefix
}

// collectDirectives extracts the //lint:ignore and //lint:file-ignore
// directives of a file, in position order. known maps analyzer names
// accepted in directives.
func collectDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments do not carry directives
			}
			text = strings.TrimSpace(text)
			start := fset.Position(c.Pos())
			d := &directive{
				pos:      start,
				file:     start.Filename,
				startOff: start.Offset,
				endOff:   fset.Position(c.End()).Offset,
			}
			rest, ok := strings.CutPrefix(text, fileDirectivePrefix)
			if ok {
				d.filewide = true
			} else if rest, ok = strings.CutPrefix(text, directivePrefix); !ok {
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.bad = "malformed " + d.name() + ": want \"" + d.name() + " <analyzer> <reason>\""
			case !known[fields[0]]:
				d.bad = d.name() + " names unknown analyzer " + strings.TrimSpace(fields[0])
			case len(fields) < 2:
				d.bad = d.name() + " " + fields[0] + " is missing a reason"
			default:
				d.analyzer = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// removalFix returns the fix deleting the stale directive's comment text.
// Applying it leaves the line behind (possibly empty); gofmt in the apply
// pass tidies the result.
func (d *directive) removalFix() *Fix {
	return &Fix{File: d.file, Start: d.startOff, End: d.endOff, NewText: ""}
}

// matches reports whether the directive suppresses a finding by the given
// analyzer at the given position: same file, and — for the line form —
// either on the directive's line (end-of-line comment) or the line directly
// below it (standalone comment above the flagged statement). The file-wide
// form matches anywhere in its file.
func (d *directive) matches(analyzer string, pos token.Position) bool {
	if d.bad != "" || d.analyzer != analyzer || d.pos.Filename != pos.Filename {
		return false
	}
	if d.filewide {
		return true
	}
	return d.pos.Line == pos.Line || d.pos.Line+1 == pos.Line
}
