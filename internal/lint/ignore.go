package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
	// bad holds a parse problem; bad directives are reported instead of
	// applied.
	bad string
}

const directivePrefix = "lint:ignore"

// collectDirectives extracts the //lint:ignore directives of a file, in
// position order. known maps analyzer names accepted in directives.
func collectDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments do not carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, directivePrefix)
			if !ok {
				continue
			}
			d := &directive{pos: fset.Position(c.Pos())}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.bad = "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\""
			case !known[fields[0]]:
				d.bad = "//lint:ignore names unknown analyzer " + strings.TrimSpace(fields[0])
			case len(fields) < 2:
				d.bad = "//lint:ignore " + fields[0] + " is missing a reason"
			default:
				d.analyzer = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// matches reports whether the directive suppresses a finding by the given
// analyzer at the given position: same file, and either on the directive's
// line (end-of-line comment) or the line directly below it (standalone
// comment above the flagged statement).
func (d *directive) matches(analyzer string, pos token.Position) bool {
	if d.bad != "" || d.analyzer != analyzer {
		return false
	}
	return d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line+1 == pos.Line)
}
