package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCast flags float→integer conversions with no saturation or
// finiteness guard in the enclosing function. Converting a float64 at or
// beyond the integer type's range is platform-defined in Go (amd64 yields
// the minimum integer value), which is exactly the overflow class fixed in
// the TDM legalizers: a huge relaxed ratio silently became a negative
// "legal" ratio.
var FloatCast = &Analyzer{
	Name: "floatcast",
	Doc:  "flag unguarded float-to-integer conversions (overflow is platform-defined)",
	Run:  runFloatCast,
}

// guardBound is the smallest constant magnitude a comparison must involve to
// count as an overflow guard. Saturation bounds are near the integer range
// (2^62, MaxInt64); comparisons against small constants (t > 2) bound the
// value from below, not above, and do not prevent overflow.
const guardBound = float64(1 << 31)

func runFloatCast(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || dst.Info()&types.IsInteger == 0 {
				return true
			}
			arg := call.Args[0]
			atv, ok := info.Types[arg]
			if !ok || atv.Value != nil { // constant: the compiler rejects overflow
				return true
			}
			src, ok := atv.Type.Underlying().(*types.Basic)
			if !ok || src.Info()&types.IsFloat == 0 {
				return true
			}
			if isClampCall(info, arg) {
				return true
			}
			if body := enclosingFuncBody(stack); body != nil && hasOverflowGuard(info, body, exprVars(info, arg)) {
				return true
			}
			p.Reportf(call.Pos(), "unguarded float-to-integer conversion to %s: overflow is platform-defined; saturate or bound the value first", dst.Name())
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost function on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// exprVars collects the variable objects mentioned by an expression.
func exprVars(info *types.Info, e ast.Expr) map[types.Object]bool {
	vars := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				vars[obj] = true
			}
		}
		return true
	})
	return vars
}

// mentionsAny reports whether the expression uses one of the variables; an
// empty set matches any expression (the conversion operand named no
// variables, so any guard in the function is accepted).
func mentionsAny(info *types.Info, e ast.Expr, vars map[types.Object]bool) bool {
	if len(vars) == 0 {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// hasOverflowGuard scans a function body for a construct that bounds one of
// the conversion's variables: a comparison against a constant of magnitude
// >= guardBound, or a math.IsInf / math.IsNaN call.
func hasOverflowGuard(info *types.Info, body *ast.BlockStmt, vars map[types.Object]bool) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			if isHugeConst(info, n.Y) && mentionsAny(info, n.X, vars) ||
				isHugeConst(info, n.X) && mentionsAny(info, n.Y, vars) {
				guarded = true
			}
		case *ast.CallExpr:
			if isMathCall(info, n, "IsInf", "IsNaN") && len(n.Args) > 0 && mentionsAny(info, n.Args[0], vars) {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// isHugeConst reports whether the expression is a constant with magnitude at
// least guardBound.
func isHugeConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	if v < 0 {
		v = -v
	}
	return v >= guardBound
}

// isClampCall reports whether the expression is already clamped: a call to
// math.Min/math.Max or the min/max builtins with at least two arguments.
func isClampCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if isMathCall(info, call, "Min", "Max") {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) >= 2 {
		if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "min" || b.Name() == "max") {
			return true
		}
	}
	return false
}

// isMathCall reports whether the call is math.<one of names>.
func isMathCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[x].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "math" {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}
