package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MutexHold enforces the serving tier's liveness invariant: a
// sync.Mutex/RWMutex must never be held across a blocking operation. PRs 5
// and 6 each fixed a latent race of exactly this shape (a drain sweeping the
// queue under the server lock, a metrics renderer writing to a slow client
// under the metrics lock) — with the worker pool and SSE fan-out, one slow
// peer behind a held lock stalls every other request.
//
// The analyzer runs an intra-procedural dataflow over each function in the
// serve packages: it tracks the set of held locks through the statement
// list (Lock/RLock adds, Unlock/RUnlock removes, defer Unlock holds to
// function end, branches are explored with a copy of the held set) and
// flags, inside a held region:
//
//   - channel sends and receives, and selects without a default clause;
//   - calls to known-blocking standard-library functions (time.Sleep,
//     net/http round trips, net dials, io.Copy, ...);
//   - writes through an abstract io.Writer (which may be a socket);
//   - calls to module functions carrying the cross-package blocks fact.
//
// Goroutine bodies launched inside the region run on their own stack and
// are skipped; non-invoked function literals are skipped too (they execute
// later, possibly after the unlock).
var MutexHold = &Analyzer{
	Name: "mutexhold",
	Doc:  "flag blocking operations while a sync mutex is held in the serving tier",
	Run:  runMutexHold,
}

func runMutexHold(p *Pass) {
	if !p.InServePkg() {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: p, info: info}
			w.walkStmts(fd.Body.List, map[string]token.Pos{})
		}
	}
}

// lockWalker tracks held locks through one function body.
type lockWalker struct {
	pass *Pass
	info *types.Info
}

// walkStmts processes a statement list sequentially, mutating held in
// place. Branch statements are explored with a copy: an unlock on one path
// does not release the lock on the fall-through path (the conservative
// direction — a branch that unlocks almost always returns).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := w.lockCall(call); key != "" {
				switch kind {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock to function end: leave it held.
		// Other deferred calls run after the region; skip them.
		return
	case *ast.GoStmt:
		// The goroutine runs on its own stack; locks held here are not
		// held there.
		return
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), held, "channel send")
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.report(s.Pos(), held, "select with no default clause")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	default:
		// DeclStmt, IncDecStmt, Branch, Empty: scan embedded expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held)
				return false
			}
			return true
		})
	}
}

// checkExpr flags blocking operations inside an expression while locks are
// held. Function literals are skipped unless immediately invoked.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // executes later, not under this region
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body runs here, under
				// the region.
				w.walkStmts(lit.Body.List, copyHeld(held))
				return false
			}
			if desc := w.blockingCall(n); desc != "" {
				w.report(n.Pos(), held, desc)
			}
		}
		return true
	})
}

// lockCall classifies a call as a Lock/Unlock on a sync.Mutex or RWMutex
// and returns a stable key for the lock expression.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := w.info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	name := types.TypeString(t, nil)
	if name != "sync.Mutex" && name != "sync.RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// blockingCall describes why the call may block, or returns "".
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.info, call)
	if fn != nil {
		key := funcKey(fn)
		if stdBlocking[key] {
			return "call to " + key
		}
		if fn.Pkg() != nil {
			path := fn.Pkg().Path()
			if (path == w.pass.ModPath || strings.HasPrefix(path, w.pass.ModPath+"/")) && w.pass.Facts.Blocks(fn) {
				return "call to " + fn.Name() + " (carries the blocks fact)"
			}
		}
	}
	if isAbstractWriterCall(w.info, call) {
		return "write through an abstract io.Writer (may be a socket)"
	}
	return ""
}

func (w *lockWalker) report(pos token.Pos, held map[string]token.Pos, what string) {
	w.pass.Reportf(pos, "%s while %s is held: a slow peer stalls every goroutine contending for the lock; release first or move the operation out of the region", what, heldNames(held))
}

// heldNames renders the held set deterministically.
func heldNames(held map[string]token.Pos) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
