package lint

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable form of one finding (tdmlint -json).
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fixable marks findings tdmlint -fix can rewrite mechanically.
	Fixable bool `json:"fixable,omitempty"`
}

// WriteJSON renders the findings as a JSON array, one object per finding.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Fixable:  f.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures — the subset GitHub code scanning consumes.
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log with one rule per
// analyzer (plus the implicit "ignore" rule for directive problems), so CI
// can upload the report for per-line PR annotations.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules := []sarifRule{}
	seen := map[string]bool{}
	addRule := func(id, doc string) {
		if !seen[id] {
			seen[id] = true
			rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
		}
	}
	for _, a := range All {
		addRule(a.Name, a.Doc)
	}
	addRule("ignore", "flag malformed or stale //lint:ignore directives")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tdmlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ParseSARIF decodes a SARIF log produced by WriteSARIF back into findings
// (file/line/column/analyzer/message), for round-trip tests and tooling.
func ParseSARIF(r io.Reader) ([]Finding, error) {
	var log sarifLog
	if err := json.NewDecoder(r).Decode(&log); err != nil {
		return nil, err
	}
	var out []Finding
	for _, run := range log.Runs {
		for _, res := range run.Results {
			f := Finding{Analyzer: res.RuleID, Message: res.Message.Text}
			if len(res.Locations) > 0 {
				loc := res.Locations[0].PhysicalLocation
				f.Pos.Filename = loc.ArtifactLocation.URI
				f.Pos.Line = loc.Region.StartLine
				f.Pos.Column = loc.Region.StartColumn
			}
			out = append(out, f)
		}
	}
	return out, nil
}
