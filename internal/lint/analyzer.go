package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// Analyzer is one named check run over every selected package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// All registers the analyzers in the order they run.
var All = []*Analyzer{FloatCast, MapOrder, RawGo, FloatEq}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// SolverPkgs and ParAllowed are the resolved Config lists.
	SolverPkgs []string
	ParAllowed []string

	root     string
	analyzer string
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      relPos(p.Fset.Position(pos), p.root),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InSolverPkg reports whether the pass's package is one of (or nested under)
// the configured solver packages.
func (p *Pass) InSolverPkg() bool { return pathIn(p.Pkg.ImportPath, p.SolverPkgs) }

// InParAllowed reports whether the package may use raw concurrency.
func (p *Pass) InParAllowed() bool { return pathIn(p.Pkg.ImportPath, p.ParAllowed) }

// pathIn reports whether path equals an entry or lives in an entry's subtree.
// External test packages ("pkg.test") count as their base package.
func pathIn(path string, list []string) bool {
	path = strings.TrimSuffix(path, ".test")
	for _, e := range list {
		if path == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// relPos rewrites the position's filename relative to the module root so
// findings print stable, short paths.
func relPos(pos token.Position, root string) token.Position {
	if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	return pos
}
