package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// Analyzer is one named check run over every selected package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// All registers the analyzers in the order they run: the four syntax-level
// v1 passes, then the four dataflow-aware v2 passes.
var All = []*Analyzer{FloatCast, MapOrder, RawGo, FloatEq, CtxFlow, MutexHold, SatArith, DetSource}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// SolverPkgs, ParAllowed, and ServePkgs are the resolved Config lists.
	SolverPkgs []string
	ParAllowed []string
	ServePkgs  []string
	// SatExempt lists the packages allowed to do raw wide arithmetic (the
	// saturating-helper home, internal/problem by default).
	SatExempt []string
	// Facts holds the module-wide function facts, final for this package's
	// dependencies (and, once the package checked, for the package itself).
	Facts *FactSet
	// ModPath is the module path, for recognizing module-internal callees.
	ModPath string

	root     string
	analyzer string
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      relPos(p.Fset.Position(pos), p.root),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding that carries a mechanical rewrite: replacing
// the source range [start, end) with newText (plus, optionally, ensuring an
// import). tdmlint -fix applies it.
func (p *Pass) ReportFix(start, end token.Pos, newText, needsImport, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      relPos(p.Fset.Position(start), p.root),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Fix: &Fix{
			File:        p.Fset.Position(start).Filename,
			Start:       p.Fset.Position(start).Offset,
			End:         p.Fset.Position(end).Offset,
			NewText:     newText,
			NeedsImport: needsImport,
		},
	})
}

// InSolverPkg reports whether the pass's package is one of (or nested under)
// the configured solver packages.
func (p *Pass) InSolverPkg() bool { return pathIn(p.Pkg.ImportPath, p.SolverPkgs) }

// InParAllowed reports whether the package may use raw concurrency.
func (p *Pass) InParAllowed() bool { return pathIn(p.Pkg.ImportPath, p.ParAllowed) }

// InServePkg reports whether the package is part of the serving tier, where
// mutexhold applies.
func (p *Pass) InServePkg() bool { return pathIn(p.Pkg.ImportPath, p.ServePkgs) }

// InSatExempt reports whether the package owns the saturating helpers and is
// therefore exempt from satarith.
func (p *Pass) InSatExempt() bool { return pathIn(p.Pkg.ImportPath, p.SatExempt) }

// pathIn reports whether path equals an entry or lives in an entry's subtree.
// External test packages ("pkg.test") count as their base package.
func pathIn(path string, list []string) bool {
	path = strings.TrimSuffix(path, ".test")
	for _, e := range list {
		if path == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// relPos rewrites the position's filename relative to the module root so
// findings print stable, short paths.
func relPos(pos token.Position, root string) token.Position {
	if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	return pos
}
