package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the solver's cancellation contract (PR 3: cancellation is
// observed at deterministic boundaries, never dropped) with two rules:
//
//  1. Dropped context: an exported function that accepts a context.Context
//     and never consults it or forwards it to any call silently strips the
//     caller's deadline and cancellation. This applies module-wide — an
//     entry point that ignores its ctx is lying about being cancellable.
//
//  2. Unobserved heavy loop: in a solver package (or the module root, where
//     the feedback loops live), an outermost loop whose body transitively
//     performs iterative work — it calls a module function carrying the
//     loops fact — inside a function that was handed a ctx must observe
//     that ctx somewhere in the loop: a direct ctx.Err()/Done()/Deadline()
//     check, or forwarding ctx into a callee that observes it. The loop is
//     the deterministic boundary; without the check, a routing/LR/refine
//     round spins to completion no matter what the caller cancelled.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag dropped contexts and heavy solver loops that never observe cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	info := p.Pkg.Info
	loopRule := p.InSolverPkg() || p.Pkg.RelDir == "."
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxVar := ctxParam(info, fd.Type)

			// Rule 1: dropped context on an exported entry point.
			if fd.Name.IsExported() && hasCtxParam(info, fd.Type) {
				if ctxVar == nil {
					p.Reportf(fd.Pos(), "exported %s discards its context.Context (unnamed parameter): name it and thread it through, or drop it from the signature", fd.Name.Name)
				} else if !usesVar(info, fd.Body, ctxVar) {
					p.Reportf(fd.Pos(), "exported %s accepts a context.Context but never uses it: cancellation and deadlines are silently dropped", fd.Name.Name)
				}
			}

			// Rule 2: unobserved heavy loops.
			if !loopRule || ctxVar == nil {
				continue
			}
			for _, loop := range outermostLoops(fd.Body) {
				body := loopBody(loop)
				if body == nil {
					continue
				}
				if !callsIterativeWork(p, info, body) {
					continue
				}
				if loopObservesCtx(p, info, body, ctxVar) {
					continue
				}
				p.Reportf(loop.Pos(), "loop transitively performs iterative solver work but never observes ctx: check ctx.Err() at an iteration boundary or forward ctx to a ctx-aware callee")
			}
		}
	}
}

// hasCtxParam reports whether the signature includes a context.Context
// parameter, named or not.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// usesVar reports whether the body mentions the variable at all.
func usesVar(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// outermostLoops returns the for/range statements in body that are not
// nested inside another loop of the same function (loops inside function
// literals are their own functions' concern).
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, m.(ast.Stmt))
				return false // do not descend: nested loops ride on the outer boundary
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
	walk(body)
	return loops
}

// loopBody returns the block of a for or range statement.
func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// callsIterativeWork reports whether the block (including nested loops and
// function literals, which execute on the loop's behalf) calls a
// module-internal function carrying the loops fact.
func callsIterativeWork(p *Pass, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != p.ModPath && !strings.HasPrefix(path, p.ModPath+"/") {
			return true
		}
		if p.Facts.Loops(fn) {
			found = true
		}
		return !found
	})
	return found
}

// loopObservesCtx reports whether the block observes the ctx variable: a
// direct Err/Done/Deadline/Value call on it, or passing it to a callee that
// carries the observes-ctx fact (ForCtx, a solver stage, a child-context
// constructor).
func loopObservesCtx(p *Pass, info *types.Info, body *ast.BlockStmt, ctx *types.Var) bool {
	observed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if observed {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == ctx {
				switch sel.Sel.Name {
				case "Done", "Err", "Deadline", "Value":
					observed = true
					return false
				}
			}
		}
		if fn := calleeFunc(info, call); fn != nil && passesVar(info, call, ctx) {
			if p.Facts.ObservesCtx(fn) {
				observed = true
				return false
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				switch fn.Name() {
				case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
					observed = true
					return false
				}
			}
		}
		return true
	})
	return observed
}
