package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path (modulePath + "/" + RelDir).
	ImportPath string
	// RelDir is the package directory relative to the module root, "." for
	// the root package.
	RelDir string
	// Files are the parsed sources, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// module is the loaded view of one Go module: every package parsed and
// type-checked in dependency order.
type module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // dependency order
}

// findModuleRoot walks upward from dir until it finds go.mod.
func findModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// loadModule parses and type-checks every package under root. Test files are
// included when includeTests is set; external test packages (package foo_test)
// are checked as separate packages. Directories named testdata or vendor and
// hidden/underscore directories are skipped.
func loadModule(root, modPath string, includeTests bool) (*module, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, rel := range dirs {
		ps, err := parseDir(fset, root, modPath, rel, includeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}

	ordered, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	checked := map[string]*types.Package{}
	imp := &moduleImporter{std: std, checked: checked}
	for _, p := range ordered {
		conf := types.Config{Importer: imp}
		var typeErrs []error
		conf.Error = func(err error) { typeErrs = append(typeErrs, err) }
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, _ := conf.Check(p.ImportPath, fset, p.Files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, typeErrs[0])
		}
		p.Types = tpkg
		p.Info = info
		checked[p.ImportPath] = tpkg
	}
	return &module{Root: root, Path: modPath, Fset: fset, Pkgs: ordered}, nil
}

// moduleImporter resolves module-internal imports from the already-checked
// set and everything else (the standard library) from source.
type moduleImporter struct {
	std     types.Importer
	checked map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// packageDirs lists module-relative directories that may contain packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory into zero, one, or two packages (the package
// itself and, with includeTests, its external _test package).
func parseDir(fset *token.FileSet, root, modPath, rel string, includeTests bool) ([]*Package, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + rel
	}

	// Group files by declared package name so external test packages
	// (package foo_test) check separately from package foo.
	byName := map[string][]*ast.File{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	var pkgs []*Package
	for _, n := range names {
		ip := importPath
		if strings.HasSuffix(n, "_test") {
			ip = importPath + ".test"
		}
		pkgs = append(pkgs, &Package{ImportPath: ip, RelDir: rel, Files: byName[n]})
	}
	return pkgs, nil
}

// buildConstraintSatisfied evaluates the file's //go:build (or legacy
// // +build) constraint under the default build configuration — GOOS, GOARCH,
// the gc compiler, no extra tags — so files gated behind tags like race or
// integration are excluded exactly as `go build` excludes them. Files with
// no constraint are always included.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: let the type checker decide
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

// defaultBuildTag reports whether a single build tag is set in the default
// configuration tdmlint analyzes under.
func defaultBuildTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		tag == "unix" && unixGOOS(runtime.GOOS) ||
		strings.HasPrefix(tag, "go1") // language-version tags: current toolchain
}

// unixGOOS mirrors the GOOSes the build system treats as unix.
func unixGOOS(goos string) bool {
	switch goos {
	case "aix", "android", "darwin", "dragonfly", "freebsd", "hurd", "illumos",
		"ios", "linux", "netbsd", "openbsd", "solaris":
		return true
	}
	return false
}

// topoSort orders packages so that every module-internal import precedes its
// importer.
func topoSort(pkgs []*Package, modPath string) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	const (
		white = iota
		gray
		black
	)
	state := map[string]int{}
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case black:
			return nil
		}
		state[p.ImportPath] = gray
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if path != modPath && !strings.HasPrefix(path, modPath+"/") {
					continue
				}
				dep, ok := byPath[path]
				if !ok {
					return fmt.Errorf("lint: %s imports %s, which has no Go files", p.ImportPath, path)
				}
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		// External test packages depend on their base package implicitly
		// through imports; plain DFS order handles them.
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
