package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tdmroute/internal/par"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path (modulePath + "/" + RelDir).
	ImportPath string
	// RelDir is the package directory relative to the module root, "." for
	// the root package.
	RelDir string
	// Files are the parsed sources, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// module is the loaded view of one Go module: every package parsed and
// type-checked in dependency order, with cross-package function facts.
type module struct {
	Root  string // absolute module root (directory of go.mod)
	Path  string // module path from go.mod
	Fset  *token.FileSet
	Pkgs  []*Package // dependency order
	Facts *FactSet
}

// findModuleRoot walks upward from dir until it finds go.mod.
func findModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// loadModule parses and type-checks every package under root. Test files are
// included when includeTests is set; external test packages (package foo_test)
// are checked as separate packages. Directories named testdata or vendor and
// hidden/underscore directories are skipped.
//
// Loading is parallel in two phases, both through internal/par so the lint
// tool obeys its own rawgo rule: directories parse concurrently (the shared
// token.FileSet is synchronized), then packages type-check concurrently in
// topological levels — every package in a level depends only on packages of
// earlier levels, so a level is an embarrassingly parallel batch. Standard-
// library imports are resolved once, up front, through a memoized source
// importer; the level workers then only read the memo. Function facts
// (FactBlocks, FactObservesCtx, FactLoops) are computed per package inside
// the level batch and merged in deterministic package order between levels,
// so by the time a package checks, the facts of everything it imports are
// final.
func loadModule(root, modPath string, includeTests bool, workers int) (*module, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// Phase 1: parse every directory concurrently.
	parsed := make([][]*Package, len(dirs))
	parseErrs := make([]error, len(dirs))
	par.ForMin(len(dirs), workers, 1, func(_, start, end int) {
		for i := start; i < end; i++ {
			parsed[i], parseErrs[i] = parseDir(fset, root, modPath, dirs[i], includeTests)
		}
	})
	var pkgs []*Package
	for i, ps := range parsed {
		if parseErrs[i] != nil {
			return nil, parseErrs[i]
		}
		pkgs = append(pkgs, ps...)
	}

	ordered, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	// Phase 2: pre-resolve the standard-library imports serially through a
	// memoized source importer. Every import path a module file names is
	// warmed here, so the concurrent level workers below hit only the memo.
	imp := newMemoImporter(fset)
	for _, path := range externalImports(pkgs, modPath) {
		if _, err := imp.Import(path); err != nil {
			return nil, fmt.Errorf("lint: resolving import %q: %w", path, err)
		}
	}

	// Phase 3: type-check in parallel topological levels.
	facts := newFactSet()
	for _, level := range topoLevels(ordered, modPath) {
		errs := make([]error, len(level))
		pkgFacts := make([]map[*types.Func]Fact, len(level))
		par.ForMin(len(level), workers, 1, func(_, start, end int) {
			for i := start; i < end; i++ {
				errs[i] = checkPackage(fset, level[i], imp)
				if errs[i] == nil {
					pkgFacts[i] = computeFacts(level[i], facts)
				}
			}
		})
		for i, err := range errs {
			if err != nil {
				return nil, err
			}
			imp.addModulePkg(level[i].ImportPath, level[i].Types)
			facts.merge(pkgFacts[i])
		}
	}
	return &module{Root: root, Path: modPath, Fset: fset, Pkgs: ordered, Facts: facts}, nil
}

// checkPackage runs go/types over one package.
func checkPackage(fset *token.FileSet, p *Package, imp types.Importer) error {
	conf := types.Config{Importer: imp}
	var typeErrs []error
	conf.Error = func(err error) { typeErrs = append(typeErrs, err) }
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, _ := conf.Check(p.ImportPath, fset, p.Files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, typeErrs[0])
	}
	p.Types = tpkg
	p.Info = info
	return nil
}

// memoImporter resolves module-internal imports from the already-checked set
// and everything else (the standard library) through one source importer
// whose results are memoized. The memo makes concurrent Import calls cheap
// and safe: after the warm-up pass every lookup is a map hit; the fallback
// path for a cold import is serialized by mu.
type memoImporter struct {
	std types.Importer

	mu     sync.Mutex
	memo   map[string]*types.Package
	module map[string]*types.Package
}

func newMemoImporter(fset *token.FileSet) *memoImporter {
	return &memoImporter{
		std:    importer.ForCompiler(fset, "source", nil),
		memo:   map[string]*types.Package{},
		module: map[string]*types.Package{},
	}
}

// addModulePkg records a checked module package. Called on the driver
// goroutine between levels, never concurrently with Import.
func (m *memoImporter) addModulePkg(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.module[path] = pkg
}

func (m *memoImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	if p, ok := m.module[path]; ok {
		m.mu.Unlock()
		return p, nil
	}
	if p, ok := m.memo[path]; ok {
		m.mu.Unlock()
		return p, nil
	}
	m.mu.Unlock()
	// Cold path: the source importer is not documented as concurrency-safe,
	// so imports run one at a time. The warm-up pass in loadModule means
	// this is reached concurrently only for paths no module file names
	// directly, which does not happen in practice.
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.memo[path]; ok {
		return p, nil
	}
	p, err := m.std.Import(path)
	if err != nil {
		return nil, err
	}
	m.memo[path] = p
	return p, nil
}

// externalImports collects every import path outside the module, sorted.
func externalImports(pkgs []*Package, modPath string) []string {
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if path == modPath || strings.HasPrefix(path, modPath+"/") {
					continue
				}
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// topoLevels groups dependency-ordered packages into levels: a package's
// level is one past the highest level among its module-internal imports, so
// each level only depends on strictly earlier ones and can type-check as one
// parallel batch.
func topoLevels(ordered []*Package, modPath string) [][]*Package {
	levelOf := map[string]int{}
	var levels [][]*Package
	for _, p := range ordered {
		lv := 0
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if path != modPath && !strings.HasPrefix(path, modPath+"/") {
					continue
				}
				if dl, ok := levelOf[path]; ok && dl+1 > lv {
					lv = dl + 1
				}
			}
		}
		// An external test package implicitly depends on its base package,
		// which topoSort already placed earlier; key both under the same
		// path, keeping the maximum.
		base := strings.TrimSuffix(p.ImportPath, ".test")
		if dl, ok := levelOf[base]; ok && p.ImportPath != base && dl+1 > lv {
			lv = dl + 1
		}
		if cur, ok := levelOf[p.ImportPath]; !ok || lv > cur {
			levelOf[p.ImportPath] = lv
		}
		for len(levels) <= lv {
			levels = append(levels, nil)
		}
		levels[lv] = append(levels[lv], p)
	}
	return levels
}

// packageDirs lists module-relative directories that may contain packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory into zero, one, or two packages (the package
// itself and, with includeTests, its external _test package).
func parseDir(fset *token.FileSet, root, modPath, rel string, includeTests bool) ([]*Package, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + rel
	}

	// Group files by declared package name so external test packages
	// (package foo_test) check separately from package foo.
	byName := map[string][]*ast.File{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	var pkgs []*Package
	for _, n := range names {
		ip := importPath
		if strings.HasSuffix(n, "_test") {
			ip = importPath + ".test"
		}
		pkgs = append(pkgs, &Package{ImportPath: ip, RelDir: rel, Files: byName[n]})
	}
	return pkgs, nil
}

// buildConstraintSatisfied evaluates the file's //go:build (or legacy
// // +build) constraint under the default build configuration — GOOS, GOARCH,
// the gc compiler, no extra tags — so files gated behind tags like race or
// integration are excluded exactly as `go build` excludes them. Files with
// no constraint are always included.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: let the type checker decide
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

// defaultBuildTag reports whether a single build tag is set in the default
// configuration tdmlint analyzes under.
func defaultBuildTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		tag == "unix" && unixGOOS(runtime.GOOS) ||
		strings.HasPrefix(tag, "go1") // language-version tags: current toolchain
}

// unixGOOS mirrors the GOOSes the build system treats as unix.
func unixGOOS(goos string) bool {
	switch goos {
	case "aix", "android", "darwin", "dragonfly", "freebsd", "hurd", "illumos",
		"ios", "linux", "netbsd", "openbsd", "solaris":
		return true
	}
	return false
}

// topoSort orders packages so that every module-internal import precedes its
// importer.
func topoSort(pkgs []*Package, modPath string) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	const (
		white = iota
		gray
		black
	)
	state := map[string]int{}
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case black:
			return nil
		}
		state[p.ImportPath] = gray
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if path != modPath && !strings.HasPrefix(path, modPath+"/") {
					continue
				}
				dep, ok := byPath[path]
				if !ok {
					return fmt.Errorf("lint: %s imports %s, which has no Go files", p.ImportPath, path)
				}
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		// External test packages depend on their base package implicitly
		// through imports; plain DFS order handles them.
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
