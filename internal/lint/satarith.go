package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SatArith generalizes the overflow class PRs 1–2 fixed by hand: wide
// integer arithmetic on solver quantities. A TDM ratio near 2^62 doubled by
// a legalizer, a cost multiplied by a slot count, a power-of-two refine
// shifting past bit 62 — all wrap silently into negative "legal" values. The
// saturating helpers in internal/problem (SatAdd64, SatMul64, SatShl64, the
// ratio ceilings) are the single blessed implementation; this analyzer flags
// raw `*`, `+`, and `<<` (and their assignment forms) on int64/uint32
// operands in solver packages when the expression involves a solver quantity
// — an identifier whose name mentions cost, usage, slot, ratio, weight, psi,
// phi, or gtr. Constant-folded expressions and expressions with a constant
// operand below the overflow horizon are exempt; `<<` is flagged whenever
// the shifted value or the shift amount is non-constant.
//
// Findings on `*` and `+` carry a mechanical -fix rewriting the expression
// through the saturating helper.
var SatArith = &Analyzer{
	Name: "satarith",
	Doc:  "flag raw wide arithmetic on cost/usage/slot values outside the saturating helpers",
	Run:  runSatArith,
}

// satNameFragments are the identifier fragments marking a solver quantity.
var satNameFragments = []string{"cost", "usage", "slot", "ratio", "weight", "psi", "phi", "gtr"}

func runSatArith(p *Pass) {
	if p.InSatExempt() {
		return
	}
	if !p.InSolverPkg() && p.Pkg.RelDir != "." {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				p.checkSatBinary(info, n)
			case *ast.AssignStmt:
				p.checkSatAssign(info, n)
			}
			return true
		})
	}
}

// satHelper maps an operator to its saturating helper name.
func satHelper(op token.Token) string {
	switch op {
	case token.MUL, token.MUL_ASSIGN:
		return "SatMul64"
	case token.ADD, token.ADD_ASSIGN:
		return "SatAdd64"
	case token.SHL, token.SHL_ASSIGN:
		return "SatShl64"
	}
	return ""
}

func (p *Pass) checkSatBinary(info *types.Info, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.MUL, token.ADD, token.SHL:
	default:
		return
	}
	tv, ok := info.Types[bin]
	if !ok || tv.Value != nil { // constant folded: the compiler checks it
		return
	}
	if !isWideInt(tv.Type) {
		return
	}
	xc := exprConst(info, bin.X)
	yc := exprConst(info, bin.Y)
	if bin.Op != token.SHL && (xc || yc) {
		// a*2 or cost+1: a constant operand keeps the growth bounded per
		// operation; the overflow class here is wide×wide.
		return
	}
	if bin.Op == token.SHL && xc && yc {
		return
	}
	if !mentionsSolverQuantity(bin) {
		return
	}
	helper := satHelper(bin.Op)
	if isWideInt64(tv.Type) {
		p.ReportFix(bin.Pos(), bin.End(),
			"problem."+helper+"("+types.ExprString(bin.X)+", "+types.ExprString(bin.Y)+")",
			p.ModPath+"/internal/problem",
			"raw %s on wide solver quantity can overflow silently: use problem.%s (or a //lint:ignore with the bound that makes it safe)", bin.Op, helper)
		return
	}
	p.Reportf(bin.Pos(), "raw %s on wide solver quantity can overflow silently: saturate or bound the operands first", bin.Op)
}

func (p *Pass) checkSatAssign(info *types.Info, as *ast.AssignStmt) {
	switch as.Tok {
	case token.MUL_ASSIGN, token.ADD_ASSIGN, token.SHL_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	t := info.TypeOf(as.Lhs[0])
	if !isWideInt(t) {
		return
	}
	if as.Tok != token.SHL_ASSIGN && exprConst(info, as.Rhs[0]) {
		return
	}
	if !mentionsSolverQuantity(as.Lhs[0]) && !mentionsSolverQuantity(as.Rhs[0]) {
		return
	}
	helper := satHelper(as.Tok)
	if isWideInt64(t) {
		lhs := types.ExprString(as.Lhs[0])
		p.ReportFix(as.Pos(), as.End(),
			lhs+" = problem."+helper+"("+lhs+", "+types.ExprString(as.Rhs[0])+")",
			p.ModPath+"/internal/problem",
			"raw %s on wide solver quantity can overflow silently: use problem.%s (or a //lint:ignore with the bound that makes it safe)", as.Tok, helper)
		return
	}
	p.Reportf(as.Pos(), "raw %s on wide solver quantity can overflow silently: saturate or bound the operands first", as.Tok)
}

// isWideInt reports whether t is an integer wide enough for silent-overflow
// trouble in the solver's domains: int64/uint64/uint32 (and int/uint, which
// are 64-bit on every supported platform).
func isWideInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64, types.Uint32, types.Int, types.Uint:
		return true
	}
	return false
}

// isWideInt64 reports whether t is exactly int64, the type the saturating
// helpers operate on.
func isWideInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// exprConst reports whether the expression is a typed or untyped constant.
func exprConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// mentionsSolverQuantity reports whether any identifier in the expression
// names a solver quantity (cost, usage, slot, ratio, weight, psi, phi, gtr).
func mentionsSolverQuantity(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			name := strings.ToLower(id.Name)
			for _, frag := range satNameFragments {
				if strings.Contains(name, frag) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
