package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestSARIFGoldenRoundTrip renders the fixture findings as SARIF, compares
// the report against the checked-in golden (regenerate with -update), and
// decodes it back to prove no finding loses its position, analyzer, or
// message on the way through CI code scanning.
func TestSARIFGoldenRoundTrip(t *testing.T) {
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	const golden = "testdata/findings.sarif"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if buf.String() != string(want) {
			t.Errorf("SARIF differs from %s\n--- got ---\n%s", golden, buf.String())
		}
	}

	// Structural sanity: valid JSON, correct version, one rule per analyzer.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := raw["version"]; v != "2.1.0" {
		t.Errorf("SARIF version = %v, want 2.1.0", v)
	}

	back, err := ParseSARIF(&buf)
	if err != nil {
		t.Fatalf("ParseSARIF: %v", err)
	}
	if len(back) != len(findings) {
		t.Fatalf("round trip lost findings: got %d, want %d", len(back), len(findings))
	}
	for i, f := range findings {
		b := back[i]
		if b.Pos.Filename != f.Pos.Filename || b.Pos.Line != f.Pos.Line ||
			b.Analyzer != f.Analyzer || b.Message != f.Message {
			t.Errorf("finding %d round trip mismatch:\n got %s\nwant %s", i, b, f)
		}
	}
}

// TestWriteJSON pins the machine-readable shape, including the fixable
// marker satarith's int64 findings carry.
func TestWriteJSON(t *testing.T) {
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not decode: %v", err)
	}
	if len(decoded) != len(findings) {
		t.Fatalf("got %d JSON findings, want %d", len(decoded), len(findings))
	}
	fixable := 0
	for _, d := range decoded {
		if d.Fixable {
			fixable++
			if !strings.HasPrefix(d.File, "satarith/") && !strings.HasPrefix(d.File, "ctxflow/") &&
				!strings.HasPrefix(d.File, "mutexhold/") && !strings.HasPrefix(d.File, "detsource/") &&
				!strings.HasPrefix(d.File, "detmaps/") && !strings.HasPrefix(d.File, "unusedignore/") {
				t.Errorf("unexpected fixable finding in %s", d.File)
			}
		}
	}
	if fixable == 0 {
		t.Error("no fixable findings: satarith rewrites and stale-directive removals should be marked")
	}
}
