package lint

import (
	"go/ast"
	"go/types"
)

// RawGo flags raw concurrency outside the allowed packages (internal/par by
// default): go statements, sync.WaitGroup, and channel construction. All
// parallelism in the solver must flow through the deterministic chunked
// fork-join helpers (par.For / par.ForMin), whose chunk boundaries — and
// therefore results — depend only on n and the worker count. A bare
// goroutine fan-out reintroduces scheduling order into results.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "flag raw concurrency primitives outside internal/par",
	Run:  runRawGo,
}

func runRawGo(p *Pass) {
	if p.InParAllowed() {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement outside internal/par: route parallelism through par.For/par.ForMin")
			case *ast.SelectorExpr:
				if x, ok := n.X.(*ast.Ident); ok && n.Sel.Name == "WaitGroup" {
					if pkg, ok := info.Uses[x].(*types.PkgName); ok && pkg.Imported().Path() == "sync" {
						p.Reportf(n.Pos(), "sync.WaitGroup outside internal/par: route parallelism through par.For/par.ForMin")
					}
				}
			case *ast.CallExpr:
				if isBuiltin(info, n.Fun, "make") && len(n.Args) > 0 {
					if t := info.TypeOf(n); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							p.Reportf(n.Pos(), "channel construction outside internal/par: route fan-out through par.For/par.ForMin")
						}
					}
				}
			}
			return true
		})
	}
}
