package lint

import (
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ApplyFixes applies the mechanical rewrites attached to findings (tdmlint
// -fix): byte-range replacements, followed by any imports the new text
// needs, followed by gofmt. It returns the files it changed, sorted.
// Overlapping fixes within one file are applied first-wins; the survivor of
// a skipped overlap stays in the findings list for the next run.
func ApplyFixes(findings []Finding) ([]string, error) {
	byFile := map[string][]*Fix{}
	for i := range findings {
		if f := findings[i].Fix; f != nil {
			byFile[f.File] = append(byFile[f.File], f)
		}
	}
	var changed []string
	for file, fixes := range byFile {
		if err := applyFileFixes(file, fixes); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}

func applyFileFixes(file string, fixes []*Fix) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("lint: applying fixes: %w", err)
	}
	// Sort ascending, drop overlaps (first wins), then apply back to front
	// so earlier offsets stay valid.
	sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start < fixes[j].Start })
	kept := fixes[:0]
	end := -1
	var imports []string
	for _, f := range fixes {
		if f.Start < end || f.Start > f.End || f.End > len(src) {
			continue
		}
		kept = append(kept, f)
		end = f.End
		if f.NeedsImport != "" {
			imports = append(imports, f.NeedsImport)
		}
	}
	out := append([]byte(nil), src...)
	for i := len(kept) - 1; i >= 0; i-- {
		f := kept[i]
		out = append(out[:f.Start], append([]byte(f.NewText), out[f.End:]...)...)
	}
	for _, imp := range imports {
		out, err = ensureImport(out, imp)
		if err != nil {
			return fmt.Errorf("lint: adding import %q to %s: %w", imp, file, err)
		}
	}
	formatted, err := format.Source(out)
	if err != nil {
		// The rewrite produced invalid Go; write nothing and report.
		return fmt.Errorf("lint: fix result for %s does not parse: %w", file, err)
	}
	return os.WriteFile(file, formatted, 0o644)
}

// ensureImport inserts the import path into the file's first import block
// (or creates one after the package clause) unless it is already imported.
func ensureImport(src []byte, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	for _, im := range f.Imports {
		if p, _ := strconv.Unquote(im.Path.Value); p == path {
			return src, nil
		}
	}
	line := "\t" + strconv.Quote(path) + "\n"
	if len(f.Imports) > 0 {
		// Insert before the first existing import spec.
		off := fset.Position(f.Imports[0].Pos()).Offset
		// Grouped import block: splice a new line in. Single ungrouped
		// import: wrap is messier, so splice a separate import statement
		// after the package clause instead.
		if i := strings.LastIndex(string(src[:off]), "import ("); i >= 0 {
			out := append([]byte(nil), src[:off]...)
			out = append(out, []byte(line)...)
			out = append(out, src[off:]...)
			return out, nil
		}
	}
	// No import block: add one right after the package clause line.
	off := fset.Position(f.Name.End()).Offset
	nl := strings.IndexByte(string(src[off:]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no newline after package clause")
	}
	insert := off + nl + 1
	block := "\nimport (\n" + line + ")\n"
	out := append([]byte(nil), src[:insert]...)
	out = append(out, []byte(block)...)
	out = append(out, src[insert:]...)
	return out, nil
}
