package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetSource hunts nondeterminism sources that can reach a Solution:
//
//  1. In solver packages: calls to time.Now/Since/Until and any use of
//     math/rand or math/rand/v2. Solver decisions keyed on wall-clock time
//     or an unseeded generator break the byte-identical replay contract
//     that the delta pipeline, the chaos harness, and the distributed
//     coordinator all pin on.
//
//  2. Everywhere else in the module that handles solver data (the root
//     package, internal/*) but is outside maporder's solver allowlist:
//     order-dependent map-range loops — the same check maporder applies to
//     the solver core, extended outward. Unlike maporder, the
//     collect-then-sort idiom (append range keys, sort the slice before
//     use) is recognized and exempt, since the sort re-establishes
//     determinism.
//
// cmd/ and examples/ are presentation code and exempt from rule 2.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "flag nondeterminism sources: wall-clock/rand in solver packages, unordered map iteration elsewhere",
	Run:  runDetSource,
}

func runDetSource(p *Pass) {
	if p.InSolverPkg() {
		runDetSourceClock(p)
		return
	}
	if strings.HasPrefix(p.Pkg.RelDir, "cmd/") || strings.HasPrefix(p.Pkg.RelDir, "examples/") {
		return
	}
	runDetSourceMaps(p)
}

// runDetSourceClock flags wall-clock and rand sources in a solver package.
func runDetSourceClock(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkg.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					p.Reportf(sel.Pos(), "time.%s in a solver package: wall-clock values must not influence solver decisions; plumb timing through the caller's telemetry", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s in a solver package: randomness breaks byte-identical replay; derive choices from instance data or a seeded source threaded through Options", pkg.Imported().Path(), sel.Sel.Name)
			}
			return true
		})
	}
}

// runDetSourceMaps extends the map-order determinism check beyond the solver
// allowlist, with the collect-then-sort idiom recognized.
func runDetSourceMaps(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				reason := orderDependent(info, rng.Body)
				if reason == "" {
					return true
				}
				if reason == "appends to a slice" && appendsAreSortedAfter(info, fd.Body, rng) {
					return true
				}
				p.Reportf(rng.Pos(), "map-range loop %s: map iteration order is nondeterministic and this package's output can reach a Solution; sort the keys first", reason)
				return true
			})
		}
	}
}

// appendsAreSortedAfter reports whether every slice appended to inside the
// map-range loop is passed to a sort function after the loop in the same
// function body — the collect-then-sort idiom, whose result is
// deterministic.
func appendsAreSortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	targets := appendTargets(info, rng.Body)
	if targets == nil {
		return false
	}
	for obj := range targets {
		if !sortedAfter(info, fnBody, rng, obj) {
			return false
		}
	}
	return true
}

// appendTargets collects the variables appended to in the block. It returns
// nil when any append target is not a plain variable (too opaque to track).
func appendTargets(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	targets := map[types.Object]bool{}
	opaque := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call.Fun, "append") || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				targets[obj] = true
				return true
			}
		}
		opaque = true
		return true
	})
	if opaque || len(targets) == 0 {
		return nil
	}
	return targets
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort* call
// positioned after the range statement in the function body.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isSortCall reports whether the call is sort.<anything> or
// slices.Sort*/slices.SortFunc*.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[x].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}
