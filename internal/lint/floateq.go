package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Equality of
// computed floats is representation-dependent (and x == x is false for NaN),
// so solver decisions must not hinge on it; compare against a tolerance or
// work in an integer domain instead. Comparison with the constant 0 is
// allowed: the zero sentinel ("field not set") is exact in IEEE 754 and used
// pervasively by the option structs.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands (constant 0 exempt)",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xtv, xok := info.Types[bin.X]
			ytv, yok := info.Types[bin.Y]
			if !xok || !yok || !isFloat(xtv.Type) || !isFloat(ytv.Type) {
				return true
			}
			if xtv.Value != nil && ytv.Value != nil { // constant folded
				return true
			}
			if isZeroConst(xtv) || isZeroConst(ytv) {
				return true
			}
			p.Reportf(bin.OpPos, "%s between floating-point values: compare with a tolerance or use an integer representation", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && constant.Sign(tv.Value) == 0
}
