package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map-range loops in solver packages whose bodies do
// something order-dependent: append to a slice, write output, or accumulate
// floating-point values. Go randomizes map iteration order, so any of these
// leaks the order into results and breaks the solver's run-to-run (and
// worker-count) determinism contract. Order-independent bodies — membership
// tests, integer counting, keyed writes — are fine.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent map-range loops in solver packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !p.InSolverPkg() {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if reason := orderDependent(info, rng.Body); reason != "" {
				p.Reportf(rng.Pos(), "map-range loop %s: map iteration order is nondeterministic; sort the keys first", reason)
			}
			return true
		})
	}
}

// orderDependent scans a map-range body for the first order-dependent
// operation and describes it; "" means the body looked order-independent.
func orderDependent(info *types.Info, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "append"):
				reason = "appends to a slice"
			case isOutputCall(info, n):
				reason = "writes output"
			}
		case *ast.AssignStmt:
			if accumulatesFloat(info, n) {
				reason = "accumulates floating-point values (addition order changes the result)"
			}
		}
		return reason == ""
	})
	return reason
}

// isBuiltin reports whether the expression names the given builtin.
func isBuiltin(info *types.Info, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isOutputCall reports whether the call writes somewhere a reader will see
// ordering: an fmt print function or a Write*-family method.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if x, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[x].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
			return false
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		return true
	}
	return false
}

// accumulatesFloat reports whether the assignment folds into a float
// accumulator: x op= expr, or x = x op expr.
func accumulatesFloat(info *types.Info, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 {
		return false
	}
	t := info.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			lhs := types.ExprString(as.Lhs[0])
			return types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs
		}
	}
	return false
}
