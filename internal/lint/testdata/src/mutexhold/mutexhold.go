// Package mutexhold seeds lock-across-blocking-operation violations. The
// package is registered as a serving-tier package in the test config, so the
// mutexhold analyzer's lock-region dataflow applies. Channels arrive as
// parameters (never constructed here) to keep rawgo silent.
package mutexhold

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

type server struct {
	mu    sync.Mutex
	state int
}

// waitPeer blocks on a channel receive; the blocks fact computed for it
// propagates to callers.
func waitPeer(ch chan int) int { return <-ch }

// BadSend sends on a channel while holding mu.
func (s *server) BadSend(ch chan int) {
	s.mu.Lock()
	ch <- s.state
	s.mu.Unlock()
}

// BadWriter writes through an abstract io.Writer — possibly a socket —
// while mu is held to function end by the deferred unlock.
func (s *server) BadWriter(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "state %d\n", s.state)
}

// BadFactCall calls a module function carrying the blocks fact under mu.
func (s *server) BadFactCall(ch chan int) {
	s.mu.Lock()
	s.state = waitPeer(ch)
	s.mu.Unlock()
}

// BadSelect parks on a select with no default clause under mu.
func (s *server) BadSelect(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-a:
		s.state = v
	case v := <-b:
		s.state = v
	}
}

// GoodUnlockFirst releases mu before the send.
func (s *server) GoodUnlockFirst(ch chan int) {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	ch <- v
}

// GoodBuffer renders into memory under mu and touches the writer after.
func (s *server) GoodBuffer(w io.Writer) {
	var buf bytes.Buffer
	s.mu.Lock()
	fmt.Fprintf(&buf, "state %d\n", s.state)
	s.mu.Unlock()
	w.Write(buf.Bytes())
}

// GoodNonBlockingEnqueue uses select-with-default under mu: it never parks.
func (s *server) GoodNonBlockingEnqueue(ch chan int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.state:
		return true
	default:
		return false
	}
}

// SuppressedSend documents why this particular send cannot park.
func (s *server) SuppressedSend(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore mutexhold fixture: ch is buffered by contract and drained before every call
	ch <- s.state
}

// StaleDirective carries an ignore over pure computation.
func (s *server) StaleDirective() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore mutexhold fixture: stale — pure computation under the lock
	return s.state + 1
}
