// Package unusedignore seeds directive errors: an ignore that suppresses
// nothing, a malformed ignore with no reason, and a file-wide ignore for an
// analyzer with no findings in the file.
//
//lint:file-ignore maporder nothing here ranges over a map, so this is stale
package unusedignore

// Stale has a directive left behind after the flagged code was fixed.
func Stale(x int) int {
	//lint:ignore floatcast left over from a deleted conversion
	return x + 1 // want an ignore finding on the directive above
}

// NoReason omits the mandatory justification.
func NoReason(a, b float64) bool {
	return a < b //lint:ignore floateq
}
