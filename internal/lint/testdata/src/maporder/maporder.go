// Package maporder seeds order-dependent and order-independent map-range
// loops. The lint test registers this package as a solver package.
package maporder

import "fmt"

// BadAppend leaks map order into a slice.
func BadAppend(m map[int]int) []int {
	var out []int
	for k := range m { // want a maporder finding here
		out = append(out, k)
	}
	return out
}

// BadPrint leaks map order into output.
func BadPrint(m map[string]int) {
	for k, v := range m { // want a maporder finding here
		fmt.Println(k, v)
	}
}

// BadFloatSum accumulates floats in map order; float addition is not
// associative, so the sum depends on iteration order.
func BadFloatSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want a maporder finding here
		s += v
	}
	return s
}

// GoodCount is order-independent: integer accumulation commutes exactly.
func GoodCount(m map[int]bool) int {
	n := 0
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}

// GoodKeyed writes through the key, so order cannot show.
func GoodKeyed(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

// Suppressed documents why the order does not matter here.
func Suppressed(m map[int]float64) float64 {
	var s float64
	//lint:ignore maporder diagnostic-only total, never compared across runs
	for _, v := range m {
		s += v
	}
	return s
}
