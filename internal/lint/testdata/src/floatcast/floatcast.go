// Package floatcast seeds one violation of each floatcast shape plus the
// guarded and suppressed negatives.
package floatcast

import "math"

// Bad is the PR 1 overflow class: no guard, so +Inf or 1e300 converts to a
// platform-defined value.
func Bad(t float64) int64 {
	if !(t > 2) {
		return 2 // a small lower bound is not an overflow guard
	}
	return int64(math.Ceil(t)) // want a floatcast finding here
}

// GuardedConst saturates against a huge constant bound first.
func GuardedConst(t float64) int64 {
	if t >= float64(math.MaxInt64) {
		return math.MaxInt64 - 1
	}
	return int64(math.Ceil(t))
}

// GuardedNaN checks finiteness with math.IsInf/IsNaN.
func GuardedNaN(t float64) int64 {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return 0
	}
	return int64(t)
}

// Clamped feeds the conversion an explicitly clamped value.
func Clamped(t float64) int64 {
	return int64(math.Min(t, 1<<40))
}

// Suppressed carries a justified ignore directive.
func Suppressed(t float64) int64 {
	//lint:ignore floatcast t is a ratio in [0,1] scaled by a small table size
	return int64(t * 16)
}
