// Package ctxflow seeds cancellation-contract violations: exported entry
// points that drop their context, and loops doing transitive iterative work
// without observing cancellation. The package is registered as a solver
// package in the test config so the loop rule applies.
package ctxflow

import "context"

// iterate is the iterative-work carrier: the loops fact computed for it
// propagates into every caller.
func iterate(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// stage observes its context, making it a valid cancellation boundary for
// loops that forward ctx into it.
func stage(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return iterate(n)
}

// BadUnnamed never binds its context: cancellation cannot reach the body.
func BadUnnamed(context.Context, int) int { return 1 }

// BadUnused binds ctx and then ignores it.
func BadUnused(ctx context.Context, n int) int { return iterate(n) }

// BadLoop checks ctx once up front but spins through iterative work with no
// observation at any iteration boundary.
func BadLoop(ctx context.Context, rounds int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for r := 0; r < rounds; r++ {
		total += iterate(r)
	}
	return total
}

// GoodLoop checks ctx at every iteration boundary.
func GoodLoop(ctx context.Context, rounds int) int {
	total := 0
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			break
		}
		total += iterate(r)
	}
	return total
}

// GoodForward forwards ctx into a callee that observes it.
func GoodForward(ctx context.Context, rounds int) int {
	total := 0
	for r := 0; r < rounds; r++ {
		total += stage(ctx, r)
	}
	return total
}

// SuppressedLoop is the BadLoop shape with a justified suppression.
func SuppressedLoop(ctx context.Context, rounds int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	//lint:ignore ctxflow fixture: rounds is bounded by a small constant at every call site
	for r := 0; r < rounds; r++ {
		total += iterate(r)
	}
	return total
}

// StaleDirective carries an ignore with nothing underneath to suppress.
func StaleDirective(n int) int {
	//lint:ignore ctxflow fixture: stale — nothing here violates the rule
	return n + 1
}
