// Package rawgo_allowed stands in for internal/par: the lint test registers
// it in ParAllowed, so its raw concurrency is not flagged.
package rawgo_allowed

import "sync"

// ForkJoin is the kind of helper internal/par provides.
func ForkJoin(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
