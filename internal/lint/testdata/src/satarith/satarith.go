// Package satarith seeds raw wide-integer arithmetic on solver quantities
// (identifiers naming cost/usage/slot/ratio/...). The package is registered
// as a solver package in the test config.
package satarith

// BadMul multiplies two wide solver quantities: silent wrap on overflow.
func BadMul(cost, slots int64) int64 {
	return cost * slots
}

// BadAddAssign accumulates usage without a saturation guard.
func BadAddAssign(usage []int64, delta int64) {
	usage[0] += delta
}

// BadShift shifts a ratio by a runtime amount: bits slide past 62 silently.
func BadShift(ratio int64, k uint) int64 {
	return ratio << k
}

// BadNarrow multiplies uint32 usage counters: no int64 helper applies, so
// the finding carries no mechanical fix.
func BadNarrow(usage, n uint32) uint32 {
	return usage * n
}

// GoodConstScale doubles a cost by a constant: growth per operation is
// bounded, so the raw operator is exempt.
func GoodConstScale(cost int64) int64 {
	return cost * 2
}

// GoodUnrelated multiplies values that are not solver quantities.
func GoodUnrelated(a, b int64) int64 {
	return a * b
}

// SuppressedAdd documents the bound that makes the raw add safe.
func SuppressedAdd(cost, delta int64) int64 {
	//lint:ignore satarith fixture: delta is at most 1 by construction
	return cost + delta
}

// StaleDirective carries an ignore over an already-exempt expression.
func StaleDirective(cost int64) int64 {
	//lint:ignore satarith fixture: stale — constant scaling is exempt anyway
	return cost * 4
}
