// Package detmaps seeds order-dependent map iteration outside the solver
// allowlist, where detsource's extended map rule applies. The
// collect-then-sort idiom is recognized and exempt.
package detmaps

import "sort"

// BadCollect returns keys in raw map order.
func BadCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodCollectSort sorts the collected keys before returning: deterministic.
func GoodCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SuppressedCollect documents why raw order is acceptable here.
func SuppressedCollect(m map[string]int) []string {
	var out []string
	//lint:ignore detsource fixture: the caller re-sorts before anything reaches a Solution
	for k := range m {
		out = append(out, k)
	}
	return out
}

// StaleDirective carries an ignore over ordered slice iteration.
func StaleDirective(xs []string) []string {
	//lint:ignore detsource fixture: stale — slice iteration is ordered
	sort.Strings(xs)
	return xs
}
