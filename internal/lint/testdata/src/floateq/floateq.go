// Package floateq seeds floating-point equality comparisons plus the
// allowed zero-sentinel and suppressed cases.
package floateq

// BadEq compares computed floats for equality.
func BadEq(a, b float64) bool {
	return a == b // want a floateq finding here
}

// BadNeqConst compares against a non-zero constant.
func BadNeqConst(x float64) bool {
	return x != 1.5 // want a floateq finding here
}

// GoodZeroSentinel is the pervasive options pattern: 0 is exact.
func GoodZeroSentinel(balance float64) float64 {
	if balance == 0 {
		balance = 0.1
	}
	return balance
}

// GoodTolerance is the recommended fix.
func GoodTolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Suppressed is the NaN self-comparison idiom, justified.
func Suppressed(x float64) bool {
	return x != x //lint:ignore floateq IEEE-754 NaN self-test idiom
}
