// Package fileignore exercises the file-wide suppression: one
// //lint:file-ignore covers every rawgo site in the file, while findings of
// other analyzers still surface.
//
//lint:file-ignore rawgo fixture-wide plumbing justification covering every site below
package fileignore

import "sync"

// WG, Chans, and the goroutine below would each be a rawgo finding without
// the file-wide directive.
var WG sync.WaitGroup

func Chans() chan int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return ch
}

// BadEq still surfaces: the file-wide directive is per-analyzer.
func BadEq(a, b float64) bool { return a == b }
