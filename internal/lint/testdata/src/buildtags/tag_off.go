//go:build !sometag

// Package buildtags seeds two files gated behind mutually exclusive build
// tags; the loader must include exactly one or type-checking fails with a
// redeclaration.
package buildtags

const gated = false
