//go:build sometag

package buildtags

const gated = true
