// Package rawgo seeds raw concurrency outside the allowed fork-join
// package: a go statement, a sync.WaitGroup, and a channel fan-out.
package rawgo

import "sync"

// BadFanOut spawns goroutines directly instead of using par.For.
func BadFanOut(work []func()) {
	var wg sync.WaitGroup // want a rawgo finding here
	done := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func(f func()) { // want a rawgo finding here
			defer wg.Done()
			f()
			done <- 1
		}(w)
	}
	wg.Wait()
}

// Suppressed is a justified exception (e.g. a signal handler).
func Suppressed() chan struct{} {
	//lint:ignore rawgo shutdown signal channel, not a compute fan-out
	return make(chan struct{})
}
