// Package detsource seeds wall-clock and randomness uses in a solver
// package, where any such source breaks byte-identical replay. The package
// is registered as a solver package in the test config.
package detsource

import (
	"math/rand"
	"time"
)

// BadClock keys a value on wall-clock time.
func BadClock() int64 {
	return time.Now().UnixNano()
}

// BadRand draws from the global generator.
func BadRand(n int) int {
	return rand.Intn(n)
}

// GoodDuration uses the time package only for a constant duration, never
// the clock.
func GoodDuration() time.Duration {
	return 5 * time.Millisecond
}

// SuppressedClock stamps telemetry with an explicit justification.
func SuppressedClock() int64 {
	//lint:ignore detsource fixture: telemetry-only timestamp, never feeds a solver decision
	return time.Now().Unix()
}

// StaleDirective carries an ignore over clock-free arithmetic.
func StaleDirective(n int) int {
	//lint:ignore detsource fixture: stale — no clock or generator here
	return n + 1
}
