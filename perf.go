package tdmroute

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"time"
)

// Perf is the stable performance block of the schema-2 Response wire format:
// per-stage wall seconds plus the process-level counters the benchmark
// harness aggregates. It is filled by Run for every mode; fields that a
// platform cannot observe (PeakRSSBytes outside Linux) are zero rather than
// omitted, so rows stay column-stable.
type Perf struct {
	// RouteSec, LRSec, LegalRefineSec are the per-stage wall times in
	// seconds (the Fig. 3(a) breakdown); TotalSec is their sum.
	RouteSec       float64
	LRSec          float64
	LegalRefineSec float64
	TotalSec       float64
	// PeakRSSBytes is the process's peak resident set size when the solve
	// finished (VmHWM), or 0 when the platform does not expose it. It is a
	// process-lifetime high-water mark, not a per-request delta.
	PeakRSSBytes int64
	// Allocs is the number of heap objects allocated during the solve
	// (runtime MemStats.Mallocs delta across Run).
	Allocs uint64
	// RippedNets and RevertedRounds mirror the routing-stage counters
	// (RouteStats) so perf consumers need only this block.
	RippedNets     int
	RevertedRounds int
	// LRIterations is the number of Lagrangian-relaxation iterations run.
	LRIterations int
}

// perfFromTimes fills the wall-clock part of a Perf from stage times.
func perfFromTimes(t StageTimes) Perf {
	sec := func(d time.Duration) float64 { return d.Seconds() }
	return Perf{
		RouteSec:       sec(t.Route),
		LRSec:          sec(t.LR),
		LegalRefineSec: sec(t.LegalRefine),
		TotalSec:       sec(t.Total()),
	}
}

// peakRSSBytes reads the process's peak resident set size from
// /proc/self/status (VmHWM). It returns 0 on any failure — non-Linux
// platforms, restricted /proc — so perf reporting degrades gracefully
// instead of failing the solve.
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
