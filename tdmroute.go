// Package tdmroute is a reproduction of "Routing Topology and Time-Division
// Multiplexing Co-Optimization for Multi-FPGA Systems" (Lin, Tai, Lin,
// Jiang; DAC 2020): a solver for ICCAD 2019 CAD Contest Problem B.
//
// Given a multi-FPGA system (an undirected FPGA graph), a netlist of two- or
// multi-pin nets, and a set of possibly overlapping NetGroups, the solver
// routes every net over the FPGA graph and assigns every routed (net, edge)
// pair a TDM ratio — a positive even integer such that the reciprocals of
// the ratios on each edge sum to at most 1 — minimizing the maximum NetGroup
// TDM ratio (GTR_max).
//
// The pipeline follows the paper:
//
//  1. NetGroup-aware inter-FPGA routing (Sec. III): KMB Steiner routing
//     ordered by net criticality θ(n), followed by φ(g)-driven rip-up and
//     reroute.
//  2. TDM ratio assignment (Sec. IV): Lagrangian relaxation whose
//     subproblem is solved in closed form per edge via the Cauchy–Schwarz
//     inequality, with a Sigmoid + simple-moving-average multiplier update,
//     then legalization and margin-driven refinement.
//
// Basic use:
//
//	in, _ := tdmroute.LoadInstance("bench.txt")
//	res, err := tdmroute.Solve(in, tdmroute.Options{})
//	// res.Solution is legal; res.Report.GTRMax is the objective;
//	// res.Report.LowerBound certifies how far from relaxed-optimal it is.
//
// The stage timings in Result.Times reproduce the runtime breakdown of
// Fig. 3(a); tdm.Options.Trace exposes the convergence series of Fig. 3(b).
package tdmroute

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tdmroute/internal/eval"
	"tdmroute/internal/mux"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
	"tdmroute/internal/timing"
)

// Re-exported model and stage types. The concrete implementations live in
// internal packages; these aliases are the public surface.
type (
	// Instance is a problem instance: FPGA graph, netlist, NetGroups.
	Instance = problem.Instance
	// Net is one routable net (a set of terminal FPGAs).
	Net = problem.Net
	// Group is one NetGroup (a set of net indices).
	Group = problem.Group
	// Routing maps each net to the FPGA-graph edges of its Steiner tree.
	Routing = problem.Routing
	// Assignment holds legalized TDM ratios parallel to a Routing.
	Assignment = problem.Assignment
	// Solution couples a Routing with its Assignment.
	Solution = problem.Solution
	// Stats are instance statistics (the Table I columns).
	Stats = problem.Stats

	// RouteOptions tunes the routing stage (Sec. III).
	RouteOptions = route.Options
	// QueueKind selects the Dijkstra priority-queue engine of the routing
	// stage (RouteOptions.Queue).
	QueueKind = route.QueueKind
	// RouteStats reports routing-stage work.
	RouteStats = route.Stats
	// TDMOptions tunes the TDM assignment stage (Sec. IV).
	TDMOptions = tdm.Options
	// Report carries the Table II metrics of one TDM assignment run.
	Report = tdm.Report

	// TimingModel parameterizes the post-solution delay analysis.
	TimingModel = timing.Model
	// TimingReport is the outcome of AnalyzeTiming.
	TimingReport = timing.Report
)

// AnalyzeTiming estimates per-net and per-group delays of a solved system
// under the hop + multiplexing-wait model (the degradation that motivates
// the paper's objective).
func AnalyzeTiming(in *Instance, sol *Solution, model TimingModel) (*TimingReport, error) {
	return timing.Analyze(in, sol, model)
}

// Queue engines for RouteOptions.Queue / Options.Queue.
const (
	// QueueAuto selects the fastest engine (currently the bucket queue).
	QueueAuto = route.QueueAuto
	// QueueHeap is the classic binary heap.
	QueueHeap = route.QueueHeap
	// QueueBucket is the monotone bucket (radix) queue for integer costs.
	QueueBucket = route.QueueBucket
)

// ParseQueue maps the wire name of a queue engine to its QueueKind. The
// accepted names are "auto" (or empty), "heap", and "bucket"; anything else
// is an *OptionError.
func ParseQueue(s string) (QueueKind, error) {
	switch s {
	case "", "auto":
		return QueueAuto, nil
	case "heap":
		return QueueHeap, nil
	case "bucket":
		return QueueBucket, nil
	}
	return 0, &OptionError{Field: "queue", Value: s, Msg: `want "auto", "heap", or "bucket"`}
}

// Legalization domains for TDMOptions.Legal.
const (
	// LegalEven is the contest/paper domain: even integers >= 2.
	LegalEven = tdm.LegalEven
	// LegalPow2 restricts ratios to powers of two (the refs [2][3]
	// domain), keeping per-edge TDM slot frames short.
	LegalPow2 = tdm.LegalPow2
)

// Re-exported I/O and validation entry points.
var (
	ParseInstance    = problem.ParseInstance
	LoadInstance     = problem.LoadInstance
	WriteInstance    = problem.WriteInstance
	SaveInstance     = problem.SaveInstance
	ParseSolution    = problem.ParseSolution
	LoadSolution     = problem.LoadSolution
	WriteSolution    = problem.WriteSolution
	SaveSolution     = problem.SaveSolution
	ParseRouting     = problem.ParseRouting
	WriteRouting     = problem.WriteRouting
	ValidateInstance = problem.ValidateInstance
	ValidateRouting  = problem.ValidateRouting
	ValidateSolution = problem.ValidateSolution
	ComputeStats     = problem.ComputeStats

	// JSON interchange variants of the text formats.
	ParseInstanceJSON = problem.ParseInstanceJSON
	WriteInstanceJSON = problem.WriteInstanceJSON
	ParseSolutionJSON = problem.ParseSolutionJSON
	WriteSolutionJSON = problem.WriteSolutionJSON

	// Binary variants for contest-scale files.
	ParseInstanceBinary = problem.ParseInstanceBinary
	WriteInstanceBinary = problem.WriteInstanceBinary
	ParseSolutionBinary = problem.ParseSolutionBinary
	WriteSolutionBinary = problem.WriteSolutionBinary

	// AuditSolution collects every violation of a solution instead of
	// stopping at the first (the debugging view of ValidateSolution).
	AuditSolution = problem.AuditSolution
	// Congestion summarizes routing pressure on the board.
	Congestion = eval.Congestion
)

// Audit re-exports for the facade.
type (
	// Audit is the structured violation report of AuditSolution.
	Audit = problem.Audit
	// Violation is one entry of an Audit.
	Violation = problem.Violation
)

// Options configures the full co-optimization pipeline. The zero value
// reproduces the paper's published parameters.
type Options struct {
	Route RouteOptions
	TDM   TDMOptions
	// Workers is the default worker count for both stages: it fills
	// Route.Workers and TDM.Workers when those are zero, so one knob
	// parallelizes the whole pipeline. Each stage is deterministic for a
	// fixed worker count; see RouteOptions.Workers for the routing
	// wave-determinism contract.
	Workers int
	// Queue selects the routing stage's Dijkstra engine by wire name:
	// "auto" (or empty), "heap", or "bucket". It fills Route.Queue when that
	// is unset; both engines produce byte-identical routings (the canonical
	// equal-cost tie-break makes the shortest path independent of queue pop
	// order), so this is purely a performance knob. Anything else fails
	// request validation with an *OptionError.
	Queue string
	// Partitions is the spatial region count of partitioned initial routing.
	// It fills Route.Partitions when that is zero. 0 selects auto (currently
	// a single region, i.e. the classic wave path — partitioning changes
	// the routing result, so it is strictly opt-in); 1 disables explicitly;
	// negative values fail request validation with an *OptionError.
	Partitions int
}

// withWorkers propagates the pipeline-level worker count into the stages.
func (o Options) withWorkers() Options {
	if o.Workers != 0 {
		if o.Route.Workers == 0 {
			o.Route.Workers = o.Workers
		}
		if o.TDM.Workers == 0 {
			o.TDM.Workers = o.Workers
		}
	}
	return o
}

// StageTimes records wall-clock time per pipeline stage, matching the
// Fig. 3(a) breakdown (parsing and output timing belong to the callers that
// perform I/O; cmd/tdmroute fills them in).
type StageTimes struct {
	Route       time.Duration // inter-FPGA routing
	LR          time.Duration // Lagrangian relaxation
	LegalRefine time.Duration // legalization + refinement
}

// Total returns the sum of the recorded stage times.
func (s StageTimes) Total() time.Duration { return s.Route + s.LR + s.LegalRefine }

// Stage identifies a pipeline stage in a Degraded report.
type Stage string

// Pipeline stages, in execution order.
const (
	StageRoute    Stage = "route"
	StageLR       Stage = "lr"
	StageRefine   Stage = "refine"
	StageFeedback Stage = "feedback"
)

// Degraded reports that a solve was curtailed — by context cancellation, an
// expired deadline, or a contained worker panic — and that the returned
// solution is the best incumbent checkpointed before the interruption rather
// than a full-budget result. The incumbent is always legal
// (ValidateSolution passes); Degraded only qualifies its quality.
type Degraded struct {
	// Stage is the earliest pipeline stage the interruption curtailed.
	// Later stages still run in bounded fallback mode to legalize the
	// incumbent, so a StageRoute degradation does not mean TDM assignment
	// was skipped.
	Stage Stage
	// Cause is the reason the run stopped — context.Canceled,
	// context.DeadlineExceeded, or a *par.PanicError — and is never nil
	// (when no concrete cause was recorded a definite sentinel stands in).
	Cause error
	// LRIterations counts completed Lagrangian-relaxation iterations.
	LRIterations int
	// FeedbackRounds counts feedback rounds started by SolveIterative
	// (always 0 for Solve).
	FeedbackRounds int
	// IncumbentGTR is GTR_max of the returned incumbent solution.
	IncumbentGTR int64
}

func (d *Degraded) String() string {
	return fmt.Sprintf("degraded at stage %s after %d LR iterations (GTR_max %d): %v",
		d.Stage, d.LRIterations, d.IncumbentGTR, d.Cause)
}

// Result is the outcome of Solve.
type Result struct {
	Solution   *Solution
	Report     Report
	RouteStats RouteStats
	Times      StageTimes
	// Degraded is non-nil when the run was interrupted and Solution is a
	// best-so-far incumbent; nil means the full optimization budget ran.
	Degraded *Degraded
}

// Solve runs the full framework of Fig. 2(b) — NetGroup-aware routing
// followed by TDM ratio assignment — and returns a legal solution.
//
// Deprecated: Use Run with a ModeSingle Request; Solve is a compatibility
// wrapper over it.
func Solve(in *Instance, opt Options) (*Result, error) {
	return SolveCtx(context.Background(), in, opt)
}

// SolveCtx is Solve under a context: when ctx is cancelled or its deadline
// expires mid-solve, the pipeline stops at the next deterministic iteration
// boundary and returns the best incumbent solution found so far, with
// Result.Degraded describing the interruption. An error is returned only
// when no legal incumbent exists yet (cancellation before initial routing
// completes, a malformed instance, or a panic before legalization).
// Cancellation is observed only at deterministic boundaries, so for a fixed
// worker count a fixed cancellation point yields a bit-identical incumbent.
//
// Deprecated: Use Run with a ModeSingle Request; SolveCtx is a
// compatibility wrapper over it.
func SolveCtx(ctx context.Context, in *Instance, opt Options) (*Result, error) {
	resp, err := Run(ctx, Request{Instance: in, Options: opt})
	if err != nil {
		return nil, err
	}
	return resp.result(), nil
}

// runSingle is the ModeSingle pipeline: routing followed by TDM ratio
// assignment, with options already normalized by the Run boundary.
func runSingle(ctx context.Context, in *Instance, opt Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	var routes Routing
	var rstats RouteStats
	err := par.Capture(func() error {
		var e error
		routes, rstats, e = route.Route(ctx, in, opt.Route)
		return e
	})
	res.Times.Route = time.Since(t0)
	if err != nil {
		return nil, err
	}
	res.RouteStats = rstats
	routeCurtailed := ctx.Err() != nil

	assign, rep, times, stage, err := assignTimed(ctx, in, routes, opt.TDM)
	res.Times.LR = times.LR
	res.Times.LegalRefine = times.LegalRefine
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.Solution = &Solution{Routes: routes, Assign: assign}
	if routeCurtailed {
		stage = StageRoute
	}
	if stage != "" {
		res.Degraded = &Degraded{
			Stage:        stage,
			Cause:        degradedCause(rep, ctx),
			LRIterations: rep.Iterations,
			IncumbentGTR: rep.GTRMax,
		}
	}
	return res, nil
}

// AssignTDM runs only the TDM ratio assignment stage on a fixed routing
// topology — the "+TA" experiment of Table II, where the paper improves the
// contest winners' solutions from their topologies alone.
//
// Deprecated: Use Run with a ModeAssignOnly Request; AssignTDM is a
// compatibility wrapper over it.
func AssignTDM(in *Instance, routes Routing, opt TDMOptions) (Assignment, Report, error) {
	return AssignTDMCtx(context.Background(), in, routes, opt)
}

// AssignTDMCtx is AssignTDM under a context: an interrupted run still
// returns a legal assignment legalized from the best LR incumbent, with
// Report.Interrupted recording the cause.
//
// Deprecated: Use Run with a ModeAssignOnly Request; AssignTDMCtx is a
// compatibility wrapper over it.
func AssignTDMCtx(ctx context.Context, in *Instance, routes Routing, opt TDMOptions) (Assignment, Report, error) {
	resp, err := Run(ctx, Request{
		Instance: in,
		Mode:     ModeAssignOnly,
		Options:  Options{TDM: opt},
		Routing:  routes,
	})
	if err != nil {
		return Assignment{}, Report{}, err
	}
	return resp.Solution.Assign, resp.Report, nil
}

// assignTimed splits the assignment stage into the LR and
// legalization+refinement timings needed by the Fig. 3(a) breakdown. The
// returned stage is "" for a complete run, or the stage the interruption
// curtailed (StageLR or StageRefine); both stage timers are populated even
// on the error path so callers can fold partial work into their totals.
func assignTimed(ctx context.Context, in *Instance, routes Routing, opt TDMOptions) (Assignment, Report, StageTimes, Stage, error) {
	var times StageTimes
	t0 := time.Now()
	// Run LR and legalization separately from tdm.Assign so the two
	// timers can be split; tdm.Assign composes the same calls.
	relaxed, z, lb, iters, converged, stopped := tdm.RunLR(ctx, in, routes, opt)
	times.LR = time.Since(t0)
	if relaxed == nil {
		// No legalizable incumbent: even the bounded fallback pass failed.
		return Assignment{}, Report{}, times, StageLR, stopped
	}

	t1 := time.Now()
	assign, rep, err := tdm.Finish(ctx, in, routes, relaxed, opt)
	times.LegalRefine = time.Since(t1)
	if err != nil {
		return Assignment{}, Report{}, times, StageRefine, err
	}

	rep.Iterations = iters
	rep.Converged = converged
	rep.LowerBound = lb
	rep.RelaxedZ = z
	var stage Stage
	switch {
	case stopped != nil:
		// LR stopped early; Finish may have recorded its own (refine)
		// interruption, but the earlier stage wins the attribution.
		stage = StageLR
		rep.Interrupted = stopped
	case rep.Interrupted != nil:
		stage = StageRefine
	}
	return assign, rep, times, stage, nil
}

// Evaluate returns GTR_max of a solution and the index of a group attaining
// it (-1 when the instance has no groups).
func Evaluate(in *Instance, sol *Solution) (int64, int) {
	return eval.MaxGroupTDM(in, sol)
}

// GroupTDMs returns the TDM ratio of every NetGroup under sol.
func GroupTDMs(in *Instance, sol *Solution) []int64 {
	return eval.GroupTDMs(in, sol)
}

// VerifySchedules performs the semantic check behind the edge constraint:
// for every routed edge it builds the concrete TDM slot schedule of
// Fig. 1(b)(c) and verifies each signal receives exactly its 1/ratio share
// of frame slots. Edges whose ratio set would need a frame longer than
// mux.MaxFrameLen (highly irregular ratios) are counted in skipped rather
// than verified. A non-nil error reports the first unschedulable edge.
func VerifySchedules(in *Instance, sol *Solution) (verified, skipped int, err error) {
	loads := problem.EdgeLoads(in.G.NumEdges(), sol.Routes)
	for e, ls := range loads {
		if len(ls) == 0 {
			continue
		}
		ratios := make([]int64, len(ls))
		for i, l := range ls {
			ratios[i] = sol.Assign.Ratios[l.Net][l.Pos]
		}
		switch err := mux.VerifyEdge(ratios); {
		case err == nil:
			verified++
		case errors.Is(err, mux.ErrFrameTooLong):
			skipped++
		default:
			return verified, skipped, fmt.Errorf("edge %d: %w", e, err)
		}
	}
	return verified, skipped, nil
}
