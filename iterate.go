package tdmroute

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tdmroute/internal/eval"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// IterateOptions tunes SolveIterative.
type IterateOptions struct {
	// Rounds is the number of feedback rounds after the initial solve.
	// Each round rips the group that actually attained GTR_max (not the
	// φ estimate of Sec. III-B), reroutes its nets, re-runs the TDM
	// assignment warm-started from the previous multipliers, and keeps
	// the result only if GTR_max improved. Zero selects 3.
	Rounds int
	// Base configures the underlying pipeline.
	Base Options

	// onRound, when non-nil, is invoked at the start of every feedback
	// round, after the round's context check. It exists so tests can
	// trigger deterministic mid-round cancellation; both the session
	// implementation and the cold reference honor it at the same point.
	onRound func(round int)
}

// IterateResult reports the outcome of SolveIterative.
type IterateResult struct {
	*Result
	// RoundsRun is the number of feedback rounds executed.
	RoundsRun int
	// RoundsKept counts rounds whose rerouting improved GTR_max.
	RoundsKept int
	// InitialGTR is the single-pass framework's GTR_max, for comparison.
	InitialGTR int64
}

// SolveIterative extends the paper's one-pass framework (Fig. 2(b)) with
// solution-driven feedback: after TDM ratio assignment, the NetGroup that
// actually realizes GTR_max is ripped up and rerouted (the Sec. III-B move,
// but driven by true ratios instead of the φ(g) estimate), and the
// assignment re-runs warm-started. Rounds that do not improve are
// discarded, so the result is never worse than Solve's.
//
// Deprecated: Use Run with a ModeIterative Request; SolveIterative is a
// compatibility wrapper over it.
func SolveIterative(in *Instance, opt IterateOptions) (*IterateResult, error) {
	return SolveIterativeCtx(context.Background(), in, opt)
}

// SolveIterativeCtx is SolveIterative under a context. Cancellation between
// or during feedback rounds keeps the accepted incumbent and returns it with
// Result.Degraded set (stage "feedback"); cancellation during the base solve
// degrades as SolveCtx does and skips the feedback rounds entirely. When a
// hard (non-interruption) error occurs after the base solve, the returned
// result is non-nil alongside the error and carries the incumbent and the
// stage times of all work done; callers must check the error first.
//
// The whole run shares one routing session and one TDM session: the APSP
// LUT, terminal MSTs, search scratch, and the CSR incidence of the LR are
// built once by the base solve and patched incrementally by every feedback
// round. The results are byte-identical to rebuilding each stage from
// scratch (the solveIterativeCold reference); only the wall clock differs.
// The session also subsumes the old explicit multiplier recapture: the base
// assignment's own LR captures λ for the first warm start, instead of
// re-running a full relaxation on the accepted topology.
//
// Deprecated: Use Run with a ModeIterative Request; SolveIterativeCtx is a
// compatibility wrapper over it.
func SolveIterativeCtx(ctx context.Context, in *Instance, opt IterateOptions) (*IterateResult, error) {
	resp, err := Run(ctx, Request{
		Instance: in,
		Mode:     ModeIterative,
		Options:  opt.Base,
		Rounds:   opt.Rounds,
		onRound:  opt.onRound,
	})
	if resp == nil {
		return nil, err
	}
	res := &IterateResult{
		Result:     resp.result(),
		RoundsRun:  resp.RoundsRun,
		RoundsKept: resp.RoundsKept,
		InitialGTR: resp.InitialGTR,
	}
	return res, err
}

// runIterative is the ModeIterative pipeline, with options already
// normalized by the Run boundary. When a hard (non-interruption) error
// occurs after the base solve, the returned result is non-nil alongside the
// error and carries the incumbent and the stage times of all work done.
//
// warm, when non-nil, receives the run's live sessions, final multipliers,
// and the stale-net bookkeeping (Request.Retain); the caller must discard it
// when runIterative also returns an error.
func runIterative(ctx context.Context, in *Instance, opt IterateOptions, warm *WarmHandle) (*IterateResult, error) {
	if opt.Rounds == 0 {
		opt.Rounds = 3
	}
	opt.Base = opt.Base.withWorkers()

	rs := route.NewSession(in, opt.Base.Route)
	ts := tdm.NewSession(in)
	var lambda []float64
	var stale []int
	if warm != nil {
		warm.rs, warm.ts = rs, ts
		defer func() {
			warm.lambda = lambda
			warm.stale = stale
		}()
	}
	base, err := solveBaseSession(ctx, in, opt.Base, rs, ts, &lambda)
	if err != nil {
		return nil, err
	}
	res := &IterateResult{Result: base, InitialGTR: base.Report.GTRMax}
	if res.Degraded != nil {
		// The base solve was already curtailed: there is no budget left
		// for feedback rounds, and the base incumbent stands.
		return res, nil
	}

	var stop error
	for round := 0; round < opt.Rounds; round++ {
		if cerr := ctx.Err(); cerr != nil {
			stop = cerr
			break
		}
		if opt.onRound != nil {
			opt.onRound(round)
		}
		res.RoundsRun++
		improved, err := feedbackRoundSession(ctx, in, res, opt, rs, ts, &lambda, &stale)
		if err != nil {
			if isInterruption(err) {
				stop = err // incumbent stands; the round's candidate is dropped
				if warm != nil {
					// A contained panic may have interrupted the TDM session
					// mid-splice; a cancellation stops only at clean
					// boundaries. Poison the handle on the former.
					var pe *par.PanicError
					if errors.As(err, &pe) {
						warm.err = err
					}
				}
				break
			}
			return res, err
		}
		if improved {
			res.RoundsKept++
		} else {
			break // a non-improving reroute of the critical group repeats
		}
	}
	if stop == nil {
		// An accepted candidate may itself have come from a curtailed
		// assignment (Report.Interrupted); surface that as degradation.
		stop = res.Report.Interrupted
	}
	if stop != nil {
		res.Degraded = &Degraded{
			Stage:          StageFeedback,
			Cause:          stop,
			LRIterations:   res.Report.Iterations,
			FeedbackRounds: res.RoundsRun,
			IncumbentGTR:   res.Report.GTRMax,
		}
	}
	return res, nil
}

// solveBaseSession is SolveCtx running through the iterated solver's
// sessions instead of throwaway per-call state, with the final multipliers
// of the base LR captured into *lambda for the first feedback warm start.
// The session stages compute exactly what their cold counterparts compute,
// so the result is identical to SolveCtx's.
func solveBaseSession(ctx context.Context, in *Instance, opt Options, rs *route.Session, ts *tdm.Session, lambda *[]float64) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	var routes Routing
	var rstats RouteStats
	err := par.Capture(func() error {
		var e error
		routes, rstats, e = rs.Route(ctx)
		return e
	})
	res.Times.Route = time.Since(t0)
	if err != nil {
		return nil, err
	}
	res.RouteStats = rstats
	routeCurtailed := ctx.Err() != nil

	topt := opt.TDM
	userCapture := topt.CaptureLambda
	topt.CaptureLambda = func(l []float64) {
		*lambda = append([]float64(nil), l...)
		if userCapture != nil {
			userCapture(l)
		}
	}
	assign, rep, times, stage, err := assignTimedSession(ctx, ts, in, routes, nil, topt)
	res.Times.LR = times.LR
	res.Times.LegalRefine = times.LegalRefine
	if err != nil {
		return nil, err
	}
	res.Report = rep
	// Snapshot the routing header: the session mutates its live routing on
	// every feedback reroute, while the incumbent must stay frozen.
	res.Solution = &Solution{Routes: rs.Routes(), Assign: assign}
	if routeCurtailed {
		stage = StageRoute
	}
	if stage != "" {
		res.Degraded = &Degraded{
			Stage:        stage,
			Cause:        degradedCause(rep, ctx),
			LRIterations: rep.Iterations,
			IncumbentGTR: rep.GTRMax,
		}
	}
	return res, nil
}

// feedbackRoundSession is feedbackRound running in place on the shared
// sessions: the critical group is rerouted inside the routing session and
// the LR state is patched with just those nets. On rejection or error the
// reroute is undone, restoring the accepted topology. (A rejected or failed
// round always ends the loop, so the TDM session — already patched to the
// dropped candidate — is not consulted again within this run.)
//
// stale records the nets whose routes the TDM session was patched with this
// round; it is cleared when the round is accepted, so after the loop it
// names exactly the nets on which the TDM session lags the routing session.
// A retained warm handle folds it into the next delta's changed set.
func feedbackRoundSession(ctx context.Context, in *Instance, res *IterateResult, opt IterateOptions, rs *route.Session, ts *tdm.Session, lambda *[]float64, stale *[]int) (bool, error) {
	cur := res.Solution
	_, gmax := eval.MaxGroupTDM(in, cur)
	if gmax < 0 {
		return false, nil
	}
	members := in.Groups[gmax].Nets

	t0 := time.Now()
	err := par.Capture(func() error {
		return rs.Reroute(ctx, members)
	})
	res.Times.Route += time.Since(t0)
	if err != nil {
		return false, err // Reroute already rolled the session back
	}
	candidate := rs.RoutesAlias()
	if err := problem.ValidateRouting(in, candidate); err != nil {
		rs.UndoReroute()
		return false, fmt.Errorf("tdmroute: feedback reroute produced invalid topology: %w", err)
	}

	topt := opt.Base.TDM
	topt.WarmLambda = *lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	// Copy rather than alias the group's member list: it outlives the round
	// inside a retained warm handle, while delta group edits mutate the
	// instance's slices in place.
	*stale = append([]int(nil), members...)
	assign, rep, times, _, err := assignTimedSession(ctx, ts, in, candidate, members, topt)
	res.Times.LR += times.LR
	res.Times.LegalRefine += times.LegalRefine
	if err != nil {
		rs.UndoReroute()
		return false, err
	}

	if rep.GTRMax >= res.Report.GTRMax {
		rs.UndoReroute()
		return false, nil // reject; keep previous solution and multipliers
	}
	res.Solution = &Solution{Routes: rs.Routes(), Assign: assign}
	res.Report = rep
	*lambda = captured
	*stale = nil
	return true, nil
}

// assignTimedSession is assignTimed over the shared TDM session: LR runs on
// the incrementally patched state (changed per the tdm.Session contract),
// legalization and refinement are the stock Finish.
func assignTimedSession(ctx context.Context, ts *tdm.Session, in *Instance, routes Routing, changed []int, opt TDMOptions) (Assignment, Report, StageTimes, Stage, error) {
	var times StageTimes
	t0 := time.Now()
	relaxed, z, lb, iters, converged, stopped := ts.RunLR(ctx, routes, changed, opt)
	times.LR = time.Since(t0)
	if relaxed == nil {
		// No legalizable incumbent: even the bounded fallback pass failed.
		return Assignment{}, Report{}, times, StageLR, stopped
	}

	t1 := time.Now()
	assign, rep, err := tdm.Finish(ctx, in, routes, relaxed, opt)
	times.LegalRefine = time.Since(t1)
	if err != nil {
		return Assignment{}, Report{}, times, StageRefine, err
	}

	rep.Iterations = iters
	rep.Converged = converged
	rep.LowerBound = lb
	rep.RelaxedZ = z
	var stage Stage
	switch {
	case stopped != nil:
		stage = StageLR
		rep.Interrupted = stopped
	case rep.Interrupted != nil:
		stage = StageRefine
	}
	return assign, rep, times, stage, nil
}

// isInterruption reports whether err is an anytime-stop cause — context
// cancellation, an expired deadline, or a contained worker panic — as
// opposed to a hard failure of the algorithm or its inputs.
func isInterruption(err error) bool {
	var pe *par.PanicError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &pe)
}

// solveIterativeCold is the pre-session implementation of SolveIterativeCtx,
// kept verbatim as the equivalence reference: every stage rebuilds its state
// from scratch (fresh router and APSP per reroute, fresh CSR per LR run,
// an explicit extra relaxation to recapture multipliers). The equivalence
// suite asserts SolveIterativeCtx reproduces its Routing and Assignment
// byte for byte.
func solveIterativeCold(ctx context.Context, in *Instance, opt IterateOptions) (*IterateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Rounds == 0 {
		opt.Rounds = 3
	}
	opt.Base = opt.Base.withWorkers()
	base, err := SolveCtx(ctx, in, opt.Base)
	if err != nil {
		return nil, err
	}
	res := &IterateResult{Result: base, InitialGTR: base.Report.GTRMax}
	if res.Degraded != nil {
		return res, nil
	}

	var lambda []float64
	topt := opt.Base.TDM
	topt.CaptureLambda = func(l []float64) { lambda = l }
	// Recapture multipliers from the accepted solution's topology so the
	// first feedback round starts warm. Only the relaxation is needed for
	// the multipliers, so skip the legalize+refine half of a full
	// assignment. An interruption here is harmless — the multipliers are a
	// warm-start hint — and is caught at the next round boundary.
	t0 := time.Now()
	tdm.RunLR(ctx, in, base.Solution.Routes, topt)
	res.Times.LR += time.Since(t0)

	var stop error
	for round := 0; round < opt.Rounds; round++ {
		if cerr := ctx.Err(); cerr != nil {
			stop = cerr
			break
		}
		if opt.onRound != nil {
			opt.onRound(round)
		}
		res.RoundsRun++
		improved, err := feedbackRoundCold(ctx, in, res, opt, &lambda)
		if err != nil {
			if isInterruption(err) {
				stop = err
				break
			}
			return res, err
		}
		if improved {
			res.RoundsKept++
		} else {
			break
		}
	}
	if stop == nil {
		stop = res.Report.Interrupted
	}
	if stop != nil {
		res.Degraded = &Degraded{
			Stage:          StageFeedback,
			Cause:          stop,
			LRIterations:   res.Report.Iterations,
			FeedbackRounds: res.RoundsRun,
			IncumbentGTR:   res.Report.GTRMax,
		}
	}
	return res, nil
}

// feedbackRoundCold rips the realized-GTR_max group, reroutes it against the
// existing usage with a throwaway router, reassigns from a cold LR build
// warm-started on the multipliers, and accepts on improvement. Stage times
// are folded into res.Times whether the round succeeds, is rejected, or
// fails — the time was spent either way.
func feedbackRoundCold(ctx context.Context, in *Instance, res *IterateResult, opt IterateOptions, lambda *[]float64) (bool, error) {
	cur := res.Solution
	_, gmax := eval.MaxGroupTDM(in, cur)
	if gmax < 0 {
		return false, nil
	}
	members := in.Groups[gmax].Nets

	candidate := cur.Routes.Clone()
	t0 := time.Now()
	err := par.Capture(func() error {
		return route.RerouteNets(ctx, in, candidate, members, opt.Base.Route)
	})
	res.Times.Route += time.Since(t0)
	if err != nil {
		return false, err
	}
	if err := problem.ValidateRouting(in, candidate); err != nil {
		return false, fmt.Errorf("tdmroute: feedback reroute produced invalid topology: %w", err)
	}

	topt := opt.Base.TDM
	topt.WarmLambda = *lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	assign, rep, times, _, err := assignTimed(ctx, in, candidate, topt)
	res.Times.LR += times.LR
	res.Times.LegalRefine += times.LegalRefine
	if err != nil {
		return false, err
	}

	if rep.GTRMax >= res.Report.GTRMax {
		return false, nil // reject; keep previous solution and multipliers
	}
	res.Solution = &Solution{Routes: candidate, Assign: assign}
	res.Report = rep
	*lambda = captured
	return true, nil
}
