package tdmroute

import (
	"fmt"
	"time"

	"tdmroute/internal/eval"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// IterateOptions tunes SolveIterative.
type IterateOptions struct {
	// Rounds is the number of feedback rounds after the initial solve.
	// Each round rips the group that actually attained GTR_max (not the
	// φ estimate of Sec. III-B), reroutes its nets, re-runs the TDM
	// assignment warm-started from the previous multipliers, and keeps
	// the result only if GTR_max improved. Zero selects 3.
	Rounds int
	// Base configures the underlying pipeline.
	Base Options
}

// IterateResult reports the outcome of SolveIterative.
type IterateResult struct {
	*Result
	// RoundsRun is the number of feedback rounds executed.
	RoundsRun int
	// RoundsKept counts rounds whose rerouting improved GTR_max.
	RoundsKept int
	// InitialGTR is the single-pass framework's GTR_max, for comparison.
	InitialGTR int64
}

// SolveIterative extends the paper's one-pass framework (Fig. 2(b)) with
// solution-driven feedback: after TDM ratio assignment, the NetGroup that
// actually realizes GTR_max is ripped up and rerouted (the Sec. III-B move,
// but driven by true ratios instead of the φ(g) estimate), and the
// assignment re-runs warm-started. Rounds that do not improve are
// discarded, so the result is never worse than Solve's.
func SolveIterative(in *Instance, opt IterateOptions) (*IterateResult, error) {
	if opt.Rounds == 0 {
		opt.Rounds = 3
	}
	opt.Base = opt.Base.withWorkers()
	base, err := Solve(in, opt.Base)
	if err != nil {
		return nil, err
	}
	res := &IterateResult{Result: base, InitialGTR: base.Report.GTRMax}

	var lambda []float64
	topt := opt.Base.TDM
	topt.CaptureLambda = func(l []float64) { lambda = l }
	// Recapture multipliers from the accepted solution's topology so the
	// first feedback round starts warm. Only the relaxation is needed for
	// the multipliers, so skip the legalize+refine half of a full
	// assignment.
	t0 := time.Now()
	tdm.RunLR(in, base.Solution.Routes, topt)
	res.Times.LR += time.Since(t0)

	for round := 0; round < opt.Rounds; round++ {
		res.RoundsRun++
		improved, err := feedbackRound(in, res, opt, &lambda)
		if err != nil {
			return nil, err
		}
		if improved {
			res.RoundsKept++
		} else {
			break // a non-improving reroute of the critical group repeats
		}
	}
	return res, nil
}

// feedbackRound rips the realized-GTR_max group, reroutes it against the
// existing usage, reassigns warm-started, and accepts on improvement.
func feedbackRound(in *Instance, res *IterateResult, opt IterateOptions, lambda *[]float64) (bool, error) {
	cur := res.Solution
	_, gmax := eval.MaxGroupTDM(in, cur)
	if gmax < 0 {
		return false, nil
	}
	members := in.Groups[gmax].Nets

	candidate := cur.Routes.Clone()
	t0 := time.Now()
	if err := route.RerouteNets(in, candidate, members, opt.Base.Route); err != nil {
		return false, err
	}
	res.Times.Route += time.Since(t0)
	if err := problem.ValidateRouting(in, candidate); err != nil {
		return false, fmt.Errorf("tdmroute: feedback reroute produced invalid topology: %w", err)
	}

	topt := opt.Base.TDM
	topt.WarmLambda = *lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	assign, rep, times, err := assignTimed(in, candidate, topt)
	// Attribute the round's work to its true stages whether or not the
	// candidate is kept — the time was spent either way.
	res.Times.LR += times.LR
	res.Times.LegalRefine += times.LegalRefine
	if err != nil {
		return false, err
	}

	if rep.GTRMax >= res.Report.GTRMax {
		return false, nil // reject; keep previous solution and multipliers
	}
	res.Solution = &Solution{Routes: candidate, Assign: assign}
	res.Report = rep
	*lambda = captured
	return true, nil
}
