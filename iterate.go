package tdmroute

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tdmroute/internal/eval"
	"tdmroute/internal/par"
	"tdmroute/internal/problem"
	"tdmroute/internal/route"
	"tdmroute/internal/tdm"
)

// IterateOptions tunes SolveIterative.
type IterateOptions struct {
	// Rounds is the number of feedback rounds after the initial solve.
	// Each round rips the group that actually attained GTR_max (not the
	// φ estimate of Sec. III-B), reroutes its nets, re-runs the TDM
	// assignment warm-started from the previous multipliers, and keeps
	// the result only if GTR_max improved. Zero selects 3.
	Rounds int
	// Base configures the underlying pipeline.
	Base Options
}

// IterateResult reports the outcome of SolveIterative.
type IterateResult struct {
	*Result
	// RoundsRun is the number of feedback rounds executed.
	RoundsRun int
	// RoundsKept counts rounds whose rerouting improved GTR_max.
	RoundsKept int
	// InitialGTR is the single-pass framework's GTR_max, for comparison.
	InitialGTR int64
}

// SolveIterative extends the paper's one-pass framework (Fig. 2(b)) with
// solution-driven feedback: after TDM ratio assignment, the NetGroup that
// actually realizes GTR_max is ripped up and rerouted (the Sec. III-B move,
// but driven by true ratios instead of the φ(g) estimate), and the
// assignment re-runs warm-started. Rounds that do not improve are
// discarded, so the result is never worse than Solve's.
func SolveIterative(in *Instance, opt IterateOptions) (*IterateResult, error) {
	return SolveIterativeCtx(context.Background(), in, opt)
}

// SolveIterativeCtx is SolveIterative under a context. Cancellation between
// or during feedback rounds keeps the accepted incumbent and returns it with
// Result.Degraded set (stage "feedback"); cancellation during the base solve
// degrades as SolveCtx does and skips the feedback rounds entirely. When a
// hard (non-interruption) error occurs after the base solve, the returned
// result is non-nil alongside the error and carries the incumbent and the
// stage times of all work done; callers must check the error first.
func SolveIterativeCtx(ctx context.Context, in *Instance, opt IterateOptions) (*IterateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Rounds == 0 {
		opt.Rounds = 3
	}
	opt.Base = opt.Base.withWorkers()
	base, err := SolveCtx(ctx, in, opt.Base)
	if err != nil {
		return nil, err
	}
	res := &IterateResult{Result: base, InitialGTR: base.Report.GTRMax}
	if res.Degraded != nil {
		// The base solve was already curtailed: there is no budget left
		// for feedback rounds, and the base incumbent stands.
		return res, nil
	}

	var lambda []float64
	topt := opt.Base.TDM
	topt.CaptureLambda = func(l []float64) { lambda = l }
	// Recapture multipliers from the accepted solution's topology so the
	// first feedback round starts warm. Only the relaxation is needed for
	// the multipliers, so skip the legalize+refine half of a full
	// assignment. An interruption here is harmless — the multipliers are a
	// warm-start hint — and is caught at the next round boundary.
	t0 := time.Now()
	tdm.RunLR(ctx, in, base.Solution.Routes, topt)
	res.Times.LR += time.Since(t0)

	var stop error
	for round := 0; round < opt.Rounds; round++ {
		if cerr := ctx.Err(); cerr != nil {
			stop = cerr
			break
		}
		res.RoundsRun++
		improved, err := feedbackRound(ctx, in, res, opt, &lambda)
		if err != nil {
			if isInterruption(err) {
				stop = err // incumbent stands; the round's candidate is dropped
				break
			}
			return res, err
		}
		if improved {
			res.RoundsKept++
		} else {
			break // a non-improving reroute of the critical group repeats
		}
	}
	if stop == nil {
		// An accepted candidate may itself have come from a curtailed
		// assignment (Report.Interrupted); surface that as degradation.
		stop = res.Report.Interrupted
	}
	if stop != nil {
		res.Degraded = &Degraded{
			Stage:          StageFeedback,
			Cause:          stop,
			LRIterations:   res.Report.Iterations,
			FeedbackRounds: res.RoundsRun,
			IncumbentGTR:   res.Report.GTRMax,
		}
	}
	return res, nil
}

// isInterruption reports whether err is an anytime-stop cause — context
// cancellation, an expired deadline, or a contained worker panic — as
// opposed to a hard failure of the algorithm or its inputs.
func isInterruption(err error) bool {
	var pe *par.PanicError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &pe)
}

// feedbackRound rips the realized-GTR_max group, reroutes it against the
// existing usage, reassigns warm-started, and accepts on improvement. Stage
// times are folded into res.Times whether the round succeeds, is rejected,
// or fails — the time was spent either way.
func feedbackRound(ctx context.Context, in *Instance, res *IterateResult, opt IterateOptions, lambda *[]float64) (bool, error) {
	cur := res.Solution
	_, gmax := eval.MaxGroupTDM(in, cur)
	if gmax < 0 {
		return false, nil
	}
	members := in.Groups[gmax].Nets

	candidate := cur.Routes.Clone()
	t0 := time.Now()
	err := par.Capture(func() error {
		return route.RerouteNets(ctx, in, candidate, members, opt.Base.Route)
	})
	res.Times.Route += time.Since(t0)
	if err != nil {
		return false, err
	}
	if err := problem.ValidateRouting(in, candidate); err != nil {
		return false, fmt.Errorf("tdmroute: feedback reroute produced invalid topology: %w", err)
	}

	topt := opt.Base.TDM
	topt.WarmLambda = *lambda
	var captured []float64
	topt.CaptureLambda = func(l []float64) { captured = l }
	assign, rep, times, _, err := assignTimed(ctx, in, candidate, topt)
	res.Times.LR += times.LR
	res.Times.LegalRefine += times.LegalRefine
	if err != nil {
		return false, err
	}

	if rep.GTRMax >= res.Report.GTRMax {
		return false, nil // reject; keep previous solution and multipliers
	}
	res.Solution = &Solution{Routes: candidate, Assign: assign}
	res.Report = rep
	*lambda = captured
	return true, nil
}
