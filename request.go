package tdmroute

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"time"
)

// Mode selects what Run executes.
type Mode int

const (
	// ModeSingle is the paper's one-pass framework (Fig. 2(b)): routing
	// followed by TDM ratio assignment. It is the zero value.
	ModeSingle Mode = iota
	// ModeIterative extends ModeSingle with feedback rounds that rip up and
	// reroute the NetGroup realizing GTR_max (Request.Rounds).
	ModeIterative
	// ModeAssignOnly runs only the TDM ratio assignment on the fixed
	// topology supplied in Request.Routing (the "+TA" experiment).
	ModeAssignOnly
	// ModeDelta re-solves an ECO edit against retained warm state: the
	// request carries the warm handle of a previous Retain run
	// (Request.Base) plus the edit (Request.Delta), and only the affected
	// nets are re-routed. The instance travels inside the handle;
	// Request.Instance is ignored.
	ModeDelta
)

// String returns the wire name of the mode ("single", "iterative",
// "assign", "delta"); ParseMode is its inverse.
func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeIterative:
		return "iterative"
	case ModeAssignOnly:
		return "assign"
	case ModeDelta:
		return "delta"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps a wire name back to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "single":
		return ModeSingle, nil
	case "iterative":
		return ModeIterative, nil
	case "assign":
		return ModeAssignOnly, nil
	case "delta":
		return ModeDelta, nil
	}
	return 0, fmt.Errorf("tdmroute: unknown mode %q", s)
}

// ProgressKind tags one Progress event.
type ProgressKind string

const (
	// ProgressLR reports a completed Lagrangian-relaxation iteration (the
	// Fig. 3(b) series): Iter, Z and LB are set.
	ProgressLR ProgressKind = "lr"
	// ProgressRound reports the start of a feedback round (ModeIterative
	// only): Round is set.
	ProgressRound ProgressKind = "round"
)

// Progress is one solver progress event delivered to Request.OnProgress.
type Progress struct {
	Kind ProgressKind
	// Round is the number of feedback rounds started so far: 0 while the
	// base solve runs, r+1 once round r has begun.
	Round int
	// Iter, Z, LB carry the LR convergence series for ProgressLR events.
	Iter int
	Z    float64
	LB   float64
}

// Request describes one solve. It subsumes the historical entry points:
// ModeSingle replaces Solve/SolveCtx, ModeIterative replaces
// SolveIterative/SolveIterativeCtx, and ModeAssignOnly replaces
// AssignTDM/AssignTDMCtx.
type Request struct {
	// Instance is the problem instance (required).
	Instance *Instance
	// Mode selects the pipeline; the zero value is ModeSingle.
	Mode Mode
	// Options configures both pipeline stages; Options.TDM alone applies to
	// ModeAssignOnly. Worker counts are normalized exactly once, at the Run
	// boundary: Options.Workers fans into both stages and non-positive
	// counts run sequentially, identically in every mode.
	Options Options
	// Rounds is the feedback-round budget for ModeIterative (0 selects 3).
	Rounds int
	// Routing is the fixed topology required by ModeAssignOnly and ignored
	// by the other modes.
	Routing Routing
	// OnProgress, when non-nil, receives solver progress events: every LR
	// iteration and every feedback-round start. It is invoked synchronously
	// on the solving goroutine and must be cheap. It composes with
	// Options.TDM.Trace; both fire when both are set.
	OnProgress func(Progress)

	// Retain asks Run to keep the solver's warm state — routing and TDM
	// sessions plus the captured multipliers — and return it in
	// Response.Warm for later ModeDelta requests. Supported by ModeSingle
	// and ModeIterative; the state is retained only when Run succeeds
	// (degraded incumbents retain, hard errors do not). Retention does not
	// change the solution: the retained path computes byte-identical results
	// to the throwaway one.
	Retain bool
	// Base is the warm handle a ModeDelta request re-solves against
	// (required for ModeDelta, ignored otherwise).
	Base *WarmHandle
	// Delta is the ECO edit a ModeDelta request applies (required for
	// ModeDelta, ignored otherwise).
	Delta *Delta

	// onRound is the deterministic mid-round cancellation hook of the
	// equivalence tests (see IterateOptions.onRound); it fires before the
	// OnProgress round event.
	onRound func(round int)
}

// Response is the outcome of Run: one shape for every mode, so callers (and
// the serve package's JSON schema) handle a single type. Mode-specific
// fields are zero when they do not apply.
type Response struct {
	// Mode echoes the request's mode.
	Mode Mode
	// Solution is the legal solution (ValidateSolution passes), possibly a
	// best-so-far incumbent when Degraded is non-nil.
	Solution *Solution
	// Report carries the Table II metrics of the TDM assignment.
	Report Report
	// RouteStats reports routing-stage work (zero for ModeAssignOnly).
	RouteStats RouteStats
	// Times is the per-stage wall breakdown (Fig. 3(a)).
	Times StageTimes
	// Degraded is non-nil when the run was interrupted and Solution is a
	// best-so-far incumbent; nil means the full optimization budget ran.
	Degraded *Degraded
	// RoundsRun / RoundsKept / InitialGTR report the feedback loop
	// (ModeIterative only).
	RoundsRun  int
	RoundsKept int
	// InitialGTR is the single-pass GTR_max before any feedback round.
	InitialGTR int64
	// Perf is the schema-2 performance block: per-stage wall seconds, peak
	// RSS, allocation count, and the rip-up counters, filled by Run for
	// every mode.
	Perf Perf
	// Warm is the retained warm state when the request asked for it
	// (Request.Retain) and after every successful ModeDelta solve (the same
	// handle, ready for the next delta). It never travels over the wire:
	// MarshalJSON omits it, and the serve layer pins handles to the node
	// that built them.
	Warm *WarmHandle
}

// Run executes one request. It is the single context-first entry point of
// the package: cancellation and deadlines are observed at deterministic
// iteration boundaries and degrade the run to its best-so-far legal
// incumbent (Response.Degraded describes the interruption) instead of
// failing. An error is returned only when no legal incumbent can exist —
// a malformed request, cancellation before initial routing completes, or a
// panic before legalization. For ModeIterative a hard error after the base
// solve returns the incumbent Response alongside the error; callers must
// check the error first.
func Run(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Instance == nil && req.Mode != ModeDelta {
		return nil, errors.New("tdmroute: Run: nil Instance")
	}
	opt, err := req.Options.normalized()
	if err != nil {
		return nil, err
	}
	req.Options = opt
	req = req.wireProgress()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	resp, err := dispatch(ctx, req)
	if resp != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		resp.Perf = perfFromTimes(resp.Times)
		resp.Perf.Allocs = ms1.Mallocs - ms0.Mallocs
		resp.Perf.PeakRSSBytes = peakRSSBytes()
		resp.Perf.RippedNets = resp.RouteStats.RippedNets
		resp.Perf.RevertedRounds = resp.RouteStats.RevertedRound
		resp.Perf.LRIterations = resp.Report.Iterations
	}
	return resp, err
}

// dispatch runs the mode-specific pipeline of an already-normalized request.
func dispatch(ctx context.Context, req Request) (*Response, error) {
	switch req.Mode {
	case ModeSingle:
		if req.Retain {
			return runSingleRetained(ctx, req)
		}
		res, err := runSingle(ctx, req.Instance, req.Options)
		if err != nil {
			return nil, err
		}
		return res.response(ModeSingle), nil

	case ModeIterative:
		var warm *WarmHandle
		if req.Retain {
			warm = &WarmHandle{in: req.Instance, opt: req.Options}
		}
		res, err := runIterative(ctx, req.Instance, IterateOptions{
			Rounds:  req.Rounds,
			Base:    req.Options,
			onRound: req.onRound,
		}, warm)
		if res == nil {
			return nil, err
		}
		resp := res.Result.response(ModeIterative)
		resp.RoundsRun = res.RoundsRun
		resp.RoundsKept = res.RoundsKept
		resp.InitialGTR = res.InitialGTR
		if warm != nil && err == nil {
			resp.Warm = warm
		}
		return resp, err

	case ModeAssignOnly:
		if req.Retain {
			return nil, errors.New("tdmroute: Run: Retain is not supported for ModeAssignOnly (there is no routing state to retain)")
		}
		return runAssignOnly(ctx, req)

	case ModeDelta:
		return runDelta(ctx, req)

	default:
		return nil, fmt.Errorf("tdmroute: Run: unknown mode %d", int(req.Mode))
	}
}

// runAssignOnly is the ModeAssignOnly arm of Run: the TDM ratio assignment
// alone on the request's fixed topology, computing exactly what tdm.Assign
// computes but with the LR / legalize+refine wall split and the Degraded
// attribution the other modes report.
func runAssignOnly(ctx context.Context, req Request) (*Response, error) {
	if req.Routing == nil {
		return nil, errors.New("tdmroute: Run: ModeAssignOnly requires a Routing")
	}
	if len(req.Routing) != len(req.Instance.Nets) {
		return nil, fmt.Errorf("tdmroute: routing has %d nets, instance has %d",
			len(req.Routing), len(req.Instance.Nets))
	}
	assign, rep, times, stage, err := assignTimed(ctx, req.Instance, req.Routing, req.Options.TDM)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Mode:     ModeAssignOnly,
		Solution: &Solution{Routes: req.Routing, Assign: assign},
		Report:   rep,
		Times:    times,
	}
	if stage != "" {
		resp.Degraded = &Degraded{
			Stage:        stage,
			Cause:        degradedCause(rep, ctx),
			LRIterations: rep.Iterations,
			IncumbentGTR: rep.GTRMax,
		}
	}
	return resp, nil
}

// OptionError is the typed error of request option validation: the options
// analogue of problem.ParseError, carrying the offending field and value so
// callers (CLI flag handling, the serve layer's 400 responses) can report
// bad options without string-matching the message.
type OptionError struct {
	// Field is the wire name of the offending option ("queue",
	// "partitions", ...).
	Field string
	// Value is the offending value, rendered as text.
	Value string
	// Msg says what was wrong with it.
	Msg string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("tdmroute: option %s=%q: %s", e.Field, e.Value, e.Msg)
}

// normalized validates and canonicalizes the options once, at the Run
// boundary: the pipeline-level Queue/Partitions knobs fan into the routing
// stage, non-positive worker counts mean sequential, and the pipeline-level
// worker knob fans into both stages (withWorkers). Validation failures are
// *OptionError values.
func (o Options) normalized() (Options, error) {
	q, err := ParseQueue(o.Queue)
	if err != nil {
		return o, err
	}
	if o.Route.Queue == QueueAuto {
		o.Route.Queue = q
	}
	if o.Partitions < 0 {
		return o, &OptionError{Field: "partitions", Value: strconv.Itoa(o.Partitions),
			Msg: "want >= 0 (0 selects auto, 1 disables partitioned routing)"}
	}
	if o.Route.Partitions == 0 {
		o.Route.Partitions = o.Partitions
	}
	if o.Workers < 0 {
		o.Workers = 1
	}
	if o.Route.Workers < 0 {
		o.Route.Workers = 1
	}
	if o.TDM.Workers < 0 {
		o.TDM.Workers = 1
	}
	return o.withWorkers(), nil
}

// wireProgress chains OnProgress into the TDM trace and the round hook.
func (req Request) wireProgress() Request {
	if req.OnProgress == nil {
		return req
	}
	emit := req.OnProgress
	round := new(int) // feedback rounds started; 0 during the base solve
	userTrace := req.Options.TDM.Trace
	req.Options.TDM.Trace = func(iter int, z, lb float64) {
		if userTrace != nil {
			userTrace(iter, z, lb)
		}
		emit(Progress{Kind: ProgressLR, Round: *round, Iter: iter, Z: z, LB: lb})
	}
	userRound := req.onRound
	req.onRound = func(r int) {
		if userRound != nil {
			userRound(r)
		}
		*round = r + 1
		emit(Progress{Kind: ProgressRound, Round: r})
	}
	return req
}

// response lifts a Result into the unified Response shape.
func (r *Result) response(mode Mode) *Response {
	if r == nil {
		return nil
	}
	return &Response{
		Mode:       mode,
		Solution:   r.Solution,
		Report:     r.Report,
		RouteStats: r.RouteStats,
		Times:      r.Times,
		Degraded:   r.Degraded,
	}
}

// result projects a Response back onto the deprecated Result shape.
func (r *Response) result() *Result {
	if r == nil {
		return nil
	}
	return &Result{
		Solution:   r.Solution,
		Report:     r.Report,
		RouteStats: r.RouteStats,
		Times:      r.Times,
		Degraded:   r.Degraded,
	}
}

// responseSchemaVersion is the wire schema generation emitted by
// Response.MarshalJSON. Version history:
//
//	1 — the original schema (no schema_version key, no perf block).
//	2 — adds "schema_version" and the stable "perf" block.
//
// UnmarshalJSON accepts both: a missing schema_version means 1.
const responseSchemaVersion = 2

// The JSON schema of a Response. Stage walls are fractional milliseconds;
// the solution itself is summarized, not embedded (fetch it through the
// solution writers or the server's /solution endpoint).
type responseJSON struct {
	SchemaVersion int              `json:"schema_version"`
	Mode          string           `json:"mode"`
	Report        reportJSON       `json:"report"`
	RouteStats    routeStatsJSON   `json:"route_stats"`
	Times         stageTimesJSON   `json:"times"`
	Perf          *perfJSON        `json:"perf,omitempty"`
	Degraded      *degradedJSON    `json:"degraded"`
	RoundsRun     int              `json:"rounds_run"`
	RoundsKept    int              `json:"rounds_kept"`
	InitialGTR    int64            `json:"initial_gtr"`
	Solution      *solutionSumJSON `json:"solution"`
}

type perfJSON struct {
	RouteSec       float64 `json:"route_sec"`
	LRSec          float64 `json:"lr_sec"`
	LegalRefineSec float64 `json:"legal_refine_sec"`
	TotalSec       float64 `json:"total_sec"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`
	Allocs         uint64  `json:"allocs"`
	RippedNets     int     `json:"ripped_nets"`
	RevertedRounds int     `json:"reverted_rounds"`
	LRIterations   int     `json:"lr_iterations"`
}

type reportJSON struct {
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	LowerBound  float64 `json:"lower_bound"`
	RelaxedZ    float64 `json:"relaxed_z"`
	GTRNoRef    int64   `json:"gtr_noref"`
	GTRMax      int64   `json:"gtr_max"`
	Interrupted string  `json:"interrupted,omitempty"`
}

type routeStatsJSON struct {
	RoutedNets    int `json:"routed_nets"`
	RipUpRounds   int `json:"ripup_rounds"`
	RevertedRound int `json:"reverted_rounds"`
	RippedNets    int `json:"ripped_nets"`
}

type stageTimesJSON struct {
	RouteMS       float64 `json:"route_ms"`
	LRMS          float64 `json:"lr_ms"`
	LegalRefineMS float64 `json:"legal_refine_ms"`
	TotalMS       float64 `json:"total_ms"`
}

type degradedJSON struct {
	Stage          string `json:"stage"`
	Cause          string `json:"cause"`
	LRIterations   int    `json:"lr_iterations"`
	FeedbackRounds int    `json:"feedback_rounds"`
	IncumbentGTR   int64  `json:"incumbent_gtr"`
}

type solutionSumJSON struct {
	Nets        int `json:"nets"`
	RoutedEdges int `json:"routed_edges"`
}

// MarshalJSON renders the response in the stable wire schema served by
// tdmroutd: snake_case keys, stage walls in milliseconds, the Degraded
// cause flattened to its message, and the solution summarized by size (the
// full solution travels through the solution writers instead). The schema
// is identical for every mode; mode-specific fields are simply zero.
func (r *Response) MarshalJSON() ([]byte, error) {
	out := responseJSON{
		SchemaVersion: responseSchemaVersion,
		Mode:          r.Mode.String(),
		Report: reportJSON{
			Iterations: r.Report.Iterations,
			Converged:  r.Report.Converged,
			LowerBound: r.Report.LowerBound,
			RelaxedZ:   r.Report.RelaxedZ,
			GTRNoRef:   r.Report.GTRNoRef,
			GTRMax:     r.Report.GTRMax,
		},
		RouteStats: routeStatsJSON{
			RoutedNets:    r.RouteStats.RoutedNets,
			RipUpRounds:   r.RouteStats.RipUpRounds,
			RevertedRound: r.RouteStats.RevertedRound,
			RippedNets:    r.RouteStats.RippedNets,
		},
		Times: stageTimesJSON{
			RouteMS:       durMS(r.Times.Route),
			LRMS:          durMS(r.Times.LR),
			LegalRefineMS: durMS(r.Times.LegalRefine),
			TotalMS:       durMS(r.Times.Total()),
		},
		Perf: &perfJSON{
			RouteSec:       r.Perf.RouteSec,
			LRSec:          r.Perf.LRSec,
			LegalRefineSec: r.Perf.LegalRefineSec,
			TotalSec:       r.Perf.TotalSec,
			PeakRSSBytes:   r.Perf.PeakRSSBytes,
			Allocs:         r.Perf.Allocs,
			RippedNets:     r.Perf.RippedNets,
			RevertedRounds: r.Perf.RevertedRounds,
			LRIterations:   r.Perf.LRIterations,
		},
		RoundsRun:  r.RoundsRun,
		RoundsKept: r.RoundsKept,
		InitialGTR: r.InitialGTR,
	}
	if r.Report.Interrupted != nil {
		out.Report.Interrupted = r.Report.Interrupted.Error()
	}
	if d := r.Degraded; d != nil {
		out.Degraded = &degradedJSON{
			Stage:          string(d.Stage),
			LRIterations:   d.LRIterations,
			FeedbackRounds: d.FeedbackRounds,
			IncumbentGTR:   d.IncumbentGTR,
		}
		if d.Cause != nil {
			out.Degraded.Cause = d.Cause.Error()
		}
	}
	if r.Solution != nil {
		out.Solution = &solutionSumJSON{
			Nets:        len(r.Solution.Routes),
			RoutedEdges: r.Solution.Routes.NumRoutedEdges(),
		}
	}
	return json.Marshal(out)
}

// durMS converts a duration to fractional milliseconds.
func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// UnmarshalJSON is the inverse of MarshalJSON as far as the wire schema
// allows: the tdmroutd client reconstructs a Response from the server's
// JSON. Error causes come back as opaque messages (errors.Is identity does
// not survive the wire), and the solution summary is dropped — the full
// solution travels through the server's solution endpoint instead, so
// Solution is nil on a decoded Response.
func (r *Response) UnmarshalJSON(data []byte) error {
	var in responseJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	// A missing schema_version is the pre-versioning v1 schema; anything
	// beyond the current generation is from a newer server and may carry
	// semantics this decoder would silently drop.
	if in.SchemaVersion > responseSchemaVersion {
		return fmt.Errorf("tdmroute: response schema_version %d is newer than supported %d",
			in.SchemaVersion, responseSchemaVersion)
	}
	mode, err := ParseMode(in.Mode)
	if err != nil {
		return err
	}
	*r = Response{
		Mode: mode,
		Report: Report{
			Iterations: in.Report.Iterations,
			Converged:  in.Report.Converged,
			LowerBound: in.Report.LowerBound,
			RelaxedZ:   in.Report.RelaxedZ,
			GTRNoRef:   in.Report.GTRNoRef,
			GTRMax:     in.Report.GTRMax,
		},
		RouteStats: RouteStats{
			RoutedNets:    in.RouteStats.RoutedNets,
			RipUpRounds:   in.RouteStats.RipUpRounds,
			RevertedRound: in.RouteStats.RevertedRound,
			RippedNets:    in.RouteStats.RippedNets,
		},
		Times: StageTimes{
			Route:       msDuration(in.Times.RouteMS),
			LR:          msDuration(in.Times.LRMS),
			LegalRefine: msDuration(in.Times.LegalRefineMS),
		},
		RoundsRun:  in.RoundsRun,
		RoundsKept: in.RoundsKept,
		InitialGTR: in.InitialGTR,
	}
	if p := in.Perf; p != nil { // absent in v1 payloads
		r.Perf = Perf{
			RouteSec:       p.RouteSec,
			LRSec:          p.LRSec,
			LegalRefineSec: p.LegalRefineSec,
			TotalSec:       p.TotalSec,
			PeakRSSBytes:   p.PeakRSSBytes,
			Allocs:         p.Allocs,
			RippedNets:     p.RippedNets,
			RevertedRounds: p.RevertedRounds,
			LRIterations:   p.LRIterations,
		}
	}
	if in.Report.Interrupted != "" {
		r.Report.Interrupted = errors.New(in.Report.Interrupted)
	}
	if d := in.Degraded; d != nil {
		r.Degraded = &Degraded{
			Stage:          Stage(d.Stage),
			LRIterations:   d.LRIterations,
			FeedbackRounds: d.FeedbackRounds,
			IncumbentGTR:   d.IncumbentGTR,
		}
		if d.Cause != "" {
			r.Degraded.Cause = errors.New(d.Cause)
		}
	}
	return nil
}

// msDuration converts wire milliseconds back to a duration, saturating
// instead of overflowing (the conversion is platform-defined past int64).
func msDuration(v float64) time.Duration {
	const maxMS = float64(1 << 52)
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v > maxMS {
		v = maxMS
	}
	return time.Duration(v * float64(time.Millisecond))
}
